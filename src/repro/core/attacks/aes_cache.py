"""The AES cache attack of §4.4 / §6.2 (Figure 11).

The victim decrypts one block with OpenSSL-style table AES inside an
enclave.  The Replayer single-steps the decryption with the §4.2.2
handle/pivot ping-pong:

* the ``rk`` round-key page and the ``Td0`` table page alternate as
  the non-present page, so execution advances one fault at a time —
  ``rk[4+s]`` faults and ``Td0`` faults bracket every statement;
* at every fault the Replayer (acting as the Monitor, second
  configuration of §4.1.3) probes all 64 Td cache lines and, before
  resuming, primes them back to DRAM; each probe therefore reveals
  exactly the lines touched (architecturally or speculatively) since
  the previous fault;
* every fault site is replayed several times, so each window is
  measured repeatedly — the denoising;
* for Figure 11 the first window is entered *unprimed* ("Replay 0"),
  showing the mixed L1/L2-L3/DRAM latencies the paper plots, before
  the primed "Replay 1"/"Replay 2" give the clean separation.

Everything is extracted in a **single logical run** of the victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.analysis import classify_hits, majority_lines
from repro.core.module import MicroScopeConfig
from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    ReplayEvent,
    WalkLocation,
    WalkTuning,
)
from repro.core.replayer import AttackEnvironment, Replayer
from repro.crypto.aes import decrypt_block_traced, rounds_for_key
from repro.crypto.aes_tables import LINES_PER_TABLE
from repro.snapshot import warm_start
from repro.victims.aes_round import AESVictim, setup_aes_victim


@dataclass
class ProbeRecord:
    """One probe of all Td tables at one fault."""

    step: int                 # fault-site ordinal (0 = first rk window)
    kind: str                 # "rk" or "td0" (which page faulted)
    replay: int               # replay number at this site (0-based)
    #: latencies[table][line]
    latencies: List[List[int]]

    def hit_lines(self, table: int, hit_threshold: int) -> List[int]:
        return classify_hits(self.latencies[table], hit_threshold)


@dataclass
class ExtractionResult:
    """Outcome of a full single-run extraction."""

    ciphertext: bytes
    probes: List[ProbeRecord]
    #: Per table: union of lines observed hit across probes.
    extracted_lines: List[Set[int]]
    #: Ground truth per table (from the instrumented software AES).
    truth_lines: List[Set[int]]
    replays_total: int
    plaintext_ok: bool

    @property
    def exact_union(self) -> bool:
        return all(self.extracted_lines[t] == self.truth_lines[t]
                   for t in range(4))

    def union_recall(self) -> float:
        truth = sum(len(s) for s in self.truth_lines)
        if truth == 0:
            return 1.0
        found = sum(len(self.extracted_lines[t] & self.truth_lines[t])
                    for t in range(4))
        return found / truth

    def union_precision(self) -> float:
        found = sum(len(s) for s in self.extracted_lines)
        if found == 0:
            return 1.0
        true_found = sum(len(self.extracted_lines[t] & self.truth_lines[t])
                         for t in range(4))
        return true_found / found


@dataclass
class Figure11Result:
    """The data behind Figure 11: per-replay latency of each Td1 line
    in the first rk-handle window of round 1."""

    replay_latencies: List[List[int]]   # [replay][line] for Td1
    hit_threshold: int
    truth_lines: List[int]              # Td1 lines truly accessed in
                                        # the probed window
    extracted_lines: List[int]          # hit lines in primed replays

    @property
    def noise_free(self) -> bool:
        return sorted(self.extracted_lines) == sorted(self.truth_lines)


class AESCacheAttack:
    """Driver for the §4.4 attack."""

    def __init__(self, key: bytes, ciphertext: bytes,
                 replays_per_site: int = 3,
                 walk_tuning: Optional[WalkTuning] = None,
                 fault_handler_cost: int = 2500):
        self.key = key
        self.ciphertext = ciphertext
        self.replays_per_site = replays_per_site
        self.walk_tuning = walk_tuning or WalkTuning(
            upper=WalkLocation.PWC, leaf=WalkLocation.DRAM)
        self.fault_handler_cost = fault_handler_cost
        self.rounds = rounds_for_key(key)

    # ------------------------------------------------------------------

    def _build_launched_environment(self):
        """Builder for the warm-start cache: a fully launched (but not
        yet armed or stepped) AES victim.  The snapshot is taken before
        any recipe exists, so each trial's stepper starts clean."""
        env = AttackEnvironment.build(module_config=MicroScopeConfig(
            fault_handler_cost=self.fault_handler_cost))
        rep = Replayer(env)
        victim_proc = rep.create_victim_process("aes-victim")
        victim = setup_aes_victim(victim_proc, self.key, self.ciphertext)
        rep.launch_victim(victim_proc, victim.program)
        return env, (victim_proc, victim)

    def _setup(self, prime_before_first: bool
               ) -> Tuple[Replayer, AESVictim, "_Stepper"]:
        # The launched environment depends only on the key (the program
        # embeds addresses and round count, never the input block), so
        # per-ciphertext trials share one snapshot and just rewrite the
        # four input words — the §4.4 warm start.
        env, (victim_proc, victim) = warm_start(
            ("aes-victim", self.key, self.fault_handler_cost),
            self._build_launched_environment)
        victim.write_ciphertext(victim_proc, self.ciphertext)
        rep = Replayer(env)
        stepper = _Stepper(rep, victim_proc, victim, self.walk_tuning,
                           self.replays_per_site, prime_before_first)
        stepper.arm()
        return rep, victim, stepper

    def hit_threshold(self, rep: Replayer) -> int:
        """Latency at or below which a probe counts as an L1/L2 hit."""
        return rep.machine.hierarchy.hit_latency(1)

    def run_figure11(self) -> Figure11Result:
        """Reproduce Figure 11: three replays of the first rk-handle
        window of round 1, Td1 line latencies per replay."""
        rep, victim, stepper = self._setup(prime_before_first=False)
        stepper.stop_after_rk_sites = 1
        rep.machine.run(50_000_000, until=lambda _m: stepper.done)
        threshold = self.hit_threshold(rep)
        window = [p for p in stepper.probes if p.kind == "rk"]
        replay_lat = [p.latencies[1] for p in window]
        primed = [p for p in window if p.replay >= 1]
        extracted = majority_lines(
            [p.hit_lines(1, threshold) for p in primed],
            quorum=max(1, len(primed)))
        truth = self._window_truth_lines(table=1, round_no=1,
                                         statements=(1, 2, 3))
        return Figure11Result(replay_latencies=replay_lat,
                              hit_threshold=threshold,
                              truth_lines=truth,
                              extracted_lines=extracted)

    def run_full_extraction(self) -> ExtractionResult:
        """Single-run extraction of every Td access of the decryption."""
        rep, victim, stepper = self._setup(prime_before_first=True)
        rep.machine.run(200_000_000, until=lambda _m: stepper.done)
        # Let the victim finish and validate functional correctness.
        rep.run_until_victim_done(context_id=0, max_cycles=2_000_000)
        expected_plain, truth_accesses = decrypt_block_traced(
            self.key, self.ciphertext)
        threshold = self.hit_threshold(rep)
        extracted: List[Set[int]] = [set() for _ in range(4)]
        for probe in stepper.probes:
            for table in range(4):
                extracted[table].update(probe.hit_lines(table, threshold))
        truth: List[Set[int]] = [set() for _ in range(4)]
        for access in truth_accesses:
            truth[access.table].add(access.line)
        plaintext_ok = victim.read_plaintext(
            rep.kernel.processes[0]) == expected_plain
        return ExtractionResult(
            ciphertext=self.ciphertext, probes=stepper.probes,
            extracted_lines=extracted, truth_lines=truth,
            replays_total=len(stepper.probes),
            plaintext_ok=plaintext_ok)

    def _window_truth_lines(self, table: int, round_no: int,
                            statements: Sequence[int]) -> List[int]:
        """Ground-truth lines of *table* for given statements of
        *round_no*."""
        _plain, accesses = decrypt_block_traced(self.key, self.ciphertext)
        lines: Set[int] = set()
        for access in accesses:
            if (access.round == round_no
                    and access.statement in statements
                    and access.table == table):
                lines.add(access.line)
        return sorted(lines)


class _Stepper:
    """The rk/Td0 ping-pong state machine of §4.4.

    Fault sequence: prologue rk fault -> pivot to Td0 -> t0's Td0 fault
    (probed, replayed) -> pivot back -> rk[4] fault (probed, replayed)
    -> pivot -> t1's Td0 fault -> ... until all middle rounds are
    stepped, then release.
    """

    def __init__(self, rep: Replayer, process, victim: AESVictim,
                 walk_tuning: WalkTuning, replays_per_site: int,
                 prime_before_first: bool):
        self.rep = rep
        self.process = process
        self.victim = victim
        self.replays_per_site = replays_per_site
        self.prime_before_first = prime_before_first
        self.probes: List[ProbeRecord] = []
        self.rk_sites = 0           # completed rk-handle fault sites
        self.site_counter = 0       # all probed fault sites
        self.stop_after_rk_sites: Optional[int] = None
        self.done = False
        self._replay_at_site = 0
        self._seen_prologue_fault = False
        self._all_td_addrs = [
            victim.td_vas[t] + 64 * line
            for t in range(4) for line in range(LINES_PER_TABLE)]
        self.recipe = rep.module.provide_replay_handle(
            process, victim.rk_va, name="aes-stepper",
            attack_function=self._on_handle_fault,
            pivot_function=self._on_pivot_fault,
            walk_tuning=walk_tuning, max_replays=10**9)
        rep.module.provide_pivot(self.recipe, victim.td_vas[0])
        #: rk accesses per middle round = 4; AES-128: 36 sites.
        self.total_rk_sites = 4 * (victim.rounds - 1)

    def arm(self):
        self.rep.arm(self.recipe)

    # --- probing -----------------------------------------------------------

    def _probe(self, kind: str):
        module = self.rep.module
        flat = module.probe_lines(self.process, self._all_td_addrs)
        latencies = [flat[t * LINES_PER_TABLE:(t + 1) * LINES_PER_TABLE]
                     for t in range(4)]
        self.probes.append(ProbeRecord(
            step=self.site_counter, kind=kind,
            replay=self._replay_at_site, latencies=latencies))

    def _prime(self) -> int:
        return self.rep.module.prime_lines(self.process,
                                           self._all_td_addrs)

    # --- fault callbacks ----------------------------------------------------

    def _on_handle_fault(self, event: ReplayEvent) -> ReplayDecision:
        if not self._seen_prologue_fault:
            # The pre-loop rk fault: no Td access can have executed yet
            # (all are data-dependent on these rk loads), so pivot the
            # attack into the round loop.  Prime so the very next probe
            # is clean (unless reproducing Fig. 11's Replay 0).
            self._seen_prologue_fault = True
            cost = self._prime() if self.prime_before_first else 0
            return ReplayDecision(ReplayAction.PIVOT, extra_cost=cost)
        if self.done:
            return ReplayDecision(ReplayAction.RELEASE)
        return self._step_site("rk")

    def _on_pivot_fault(self, event: ReplayEvent) -> ReplayDecision:
        if self.done:
            return ReplayDecision(ReplayAction.RELEASE)
        if not self._seen_prologue_fault:
            # Defensive: should not happen — pivot armed after prologue.
            return ReplayDecision(ReplayAction.PIVOT)
        return self._step_site("td0")

    def _step_site(self, kind: str) -> ReplayDecision:
        self._probe(kind)
        self._replay_at_site += 1
        if self._replay_at_site < self.replays_per_site:
            cost = self._prime()
            return ReplayDecision(ReplayAction.REPLAY, extra_cost=cost)
        # Site complete: advance via the pivot swap.
        self._replay_at_site = 0
        self.site_counter += 1
        if kind == "rk":
            self.rk_sites += 1
            if (self.stop_after_rk_sites is not None
                    and self.rk_sites >= self.stop_after_rk_sites) \
                    or self.rk_sites >= self.total_rk_sites:
                self.done = True
                return ReplayDecision(ReplayAction.RELEASE)
        cost = self._prime()
        return ReplayDecision(ReplayAction.PIVOT, extra_cost=cost)
