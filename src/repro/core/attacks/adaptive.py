"""Adaptive attack recipes (§5.2.1).

"This modular design allows an attacker to ... dynamically change the
attack recipe depending on the victim behavior.  For example, if a
side-channel attack is unsuccessful for a number of replays, the
attacker can switch from a long page walk to a short one."

Demonstrated here on the loop-secret victim: the attack *starts* with
a long (DRAM-leaf) walk, whose huge speculative window covers many
iterations at once — the probe returns piles of lines and extraction
is ambiguous.  After a configurable number of uninformative replays
the attack function rewrites its own recipe's walk tuning to the short
(L1-leaf) configuration; windows shrink to a couple of iterations and
extraction proceeds as in the §4.2.2 attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.analysis import classify_hits, majority_lines
from repro.core.attacks.loop_secret import LoopSecretAttack
from repro.core.module import MicroScopeConfig
from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    ReplayEvent,
    WalkLocation,
    WalkTuning,
)
from repro.core.replayer import AttackEnvironment, Replayer
from repro.victims.loop_secret import setup_loop_secret_victim

#: A probe returning more than this many lines is "uninformative":
#: the window is too wide to attribute.
AMBIGUITY_LIMIT = 3


@dataclass
class AdaptiveAttackResult:
    extracted: List[Optional[int]]
    truth: List[int]
    #: Replay number at which the recipe switched to the short walk.
    switched_at_replay: Optional[int]
    #: Probe widths (distinct lines) before and after the switch.
    widths_before: List[int]
    widths_after: List[int]

    @property
    def accuracy(self) -> float:
        if not self.truth:
            return 1.0
        good = sum(1 for got, want in zip(self.extracted, self.truth)
                   if got == want)
        return good / len(self.truth)

    @property
    def adapted(self) -> bool:
        return self.switched_at_replay is not None


@dataclass
class AdaptiveWalkAttack:
    """Loop-secret extraction that tunes its own walk length online."""

    replays_per_iteration: int = 3
    uninformative_limit: int = 2
    table_lines: int = 16

    def run(self, secrets: List[int]) -> AdaptiveAttackResult:
        rep = Replayer(AttackEnvironment.build(
            module_config=MicroScopeConfig(fault_handler_cost=2500)))
        victim_proc = rep.create_victim_process("adaptive-victim")
        victim = setup_loop_secret_victim(
            victim_proc, secrets, table_lines=self.table_lines)
        probe_addrs = [victim.table_line_va(line)
                       for line in range(self.table_lines)]
        module = rep.module
        threshold = rep.machine.hierarchy.hit_latency(1)

        windows: List[Set[int]] = []
        replay_hits: List[List[int]] = []
        state = {"replay": 0, "uninformative": 0,
                 "switched_at": None}
        widths_before: List[int] = []
        widths_after: List[int] = []

        def on_handle(event: ReplayEvent) -> ReplayDecision:
            hits = classify_hits(
                module.probe_lines(victim_proc, probe_addrs), threshold)
            cost = module.prime_lines(victim_proc, probe_addrs)
            if state["switched_at"] is None:
                widths_before.append(len(hits))
            else:
                widths_after.append(len(hits))
            if state["switched_at"] is None \
                    and len(hits) > AMBIGUITY_LIMIT:
                state["uninformative"] += 1
                if state["uninformative"] >= self.uninformative_limit:
                    # THE §5.2.1 MOVE: rewrite the live recipe.
                    event.recipe.walk_tuning = WalkTuning(
                        upper=WalkLocation.PWC, leaf=WalkLocation.L1)
                    state["switched_at"] = event.replay_no
                    replay_hits.clear()
                    state["replay"] = 0
                    return ReplayDecision(ReplayAction.REPLAY,
                                          extra_cost=cost)
                return ReplayDecision(ReplayAction.REPLAY,
                                      extra_cost=cost)
            replay_hits.append(hits)
            state["replay"] += 1
            if state["replay"] < self.replays_per_iteration:
                return ReplayDecision(ReplayAction.REPLAY,
                                      extra_cost=cost)
            state["replay"] = 0
            windows.append(set(majority_lines(replay_hits)))
            replay_hits.clear()
            if len(windows) >= len(secrets):
                return ReplayDecision(ReplayAction.RELEASE,
                                      extra_cost=cost)
            return ReplayDecision(ReplayAction.PIVOT, extra_cost=cost)

        def on_pivot(event: ReplayEvent) -> ReplayDecision:
            cost = module.prime_lines(victim_proc, probe_addrs)
            return ReplayDecision(ReplayAction.PIVOT, extra_cost=cost)

        recipe = module.provide_replay_handle(
            victim_proc, victim.handle_va, name="adaptive-loop",
            attack_function=on_handle, pivot_function=on_pivot,
            walk_tuning=WalkTuning(upper=WalkLocation.PWC,
                                   leaf=WalkLocation.DRAM),
            max_replays=10**9)
        module.provide_pivot(recipe, victim.pivot_va)
        rep.launch_victim(victim_proc, victim.program)
        module.prime_lines(victim_proc, probe_addrs)
        rep.arm(recipe)
        rep.machine.run(
            150_000_000,
            until=lambda _m: rep.machine.contexts[0].finished())

        extracted = LoopSecretAttack._decode(windows, len(secrets))
        return AdaptiveAttackResult(
            extracted=extracted, truth=list(secrets),
            switched_at_replay=state["switched_at"],
            widths_before=widths_before, widths_after=widths_after)
