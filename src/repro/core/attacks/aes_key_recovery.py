"""AES key recovery driven end-to-end by MicroScope's own probes.

The §4.4 attack extracts, per fault window, the set of Td cache lines
touched.  This module turns those *attack-observed* windows into
per-statement attributions for middle round 1, and the attributions
into key material:

* each round-1 lookup index is ``ct_byte ^ k_byte`` where ``k`` is the
  first decryption round key (= the last encryption round key);
* a 64-byte line fixes the index's high nibble, so every attributed
  (statement, table) line yields a candidate set for one key byte's
  high nibble;
* candidate sets from decryptions of *different ciphertexts* intersect
  down to the true nibble.

For AES-128 the last round key determines the master key, so combined
with a sub-line channel (entry granularity — MemJam-style, which
MicroScope can equally denoise) the same pipeline would complete the
key; at pure line granularity it provably yields the 64 high-nibble
bits, which is what this module demonstrates *from the attack alone*.

Window algebra (sites as the §4.4 stepper orders them; all windows are
majority-combined primed replays):

========================  ==========================================
site                      content
========================  ==========================================
``td0`` site *s* (t_s)    Td1-3 lookups of statements s..3
``rk`` site *s* (rk[4+s]) all-table lookups of statements s+1..3
replay-0 of ``rk`` site 0 t0's architectural lookups + the window
========================  ==========================================

so, per table::

    stmt3  = W_rk[2]
    stmt2  = W_rk[1] - W_rk[2]          (fallback: collision set)
    stmt1  = W_rk[0] - W_rk[1]
    stmt0  = W_td0[0] - W_rk[0]         (tables 1-3)
    stmt0  = replay0(rk[0])[Td0] - W_rk[0][Td0]   (table 0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.analysis import majority_lines, round1_byte_index
from repro.core.attacks.aes_cache import AESCacheAttack, ProbeRecord
from repro.crypto.aes import expand_decrypt_key, first_round_accesses

#: Attribution key: (statement, table).
StmtTable = Tuple[int, int]


@dataclass
class Round1Attribution:
    """Per (statement, table): the candidate line set the attack
    derived for middle round 1 of one decryption."""

    ciphertext: bytes
    candidates: Dict[StmtTable, Set[int]]

    def accuracy_against(self, key: bytes) -> float:
        """Fraction of (statement, table) slots whose candidate set
        contains the true line (validation metric)."""
        truth = {(a.statement, a.table): a.line
                 for a in first_round_accesses(key, self.ciphertext)}
        good = sum(1 for slot, lines in self.candidates.items()
                   if truth[slot] in lines)
        return good / max(len(self.candidates), 1)


def attribute_round1(probes: Sequence[ProbeRecord], ciphertext: bytes,
                     hit_threshold: int) -> Round1Attribution:
    """Derive per-statement round-1 line candidates from the stepper's
    probe log (first four rk sites + interleaved td0 sites)."""
    def window(kind: str, ordinal: int, table: int) -> Set[int]:
        """Majority-combined *primed* replays of the ordinal-th fault
        site of the given kind."""
        steps = sorted({p.step for p in probes if p.kind == kind})
        if ordinal >= len(steps):
            return set()
        step = steps[ordinal]
        lines = [p.hit_lines(table, hit_threshold) for p in probes
                 if p.kind == kind and p.step == step and p.replay > 0]
        return set(majority_lines(lines)) if lines else set()

    def replay0(kind: str, ordinal: int, table: int) -> Set[int]:
        steps = sorted({p.step for p in probes if p.kind == kind})
        if ordinal >= len(steps):
            return set()
        step = steps[ordinal]
        for probe in probes:
            if probe.kind == kind and probe.step == step \
                    and probe.replay == 0:
                return set(probe.hit_lines(table, hit_threshold))
        return set()

    candidates: Dict[StmtTable, Set[int]] = {}
    for table in range(4):
        w_rk = [window("rk", s, table) for s in range(3)]
        candidates[(3, table)] = set(w_rk[2])
        for stmt, (current, nxt) in ((2, (w_rk[1], w_rk[2])),
                                     (1, (w_rk[0], w_rk[1]))):
            gone = current - nxt
            candidates[(stmt, table)] = gone if gone else set(current)
        if table == 0:
            arch = replay0("rk", 0, 0)
            gone = arch - w_rk[0]
            candidates[(0, 0)] = gone if gone else arch
        else:
            w_td0 = window("td0", 0, table)
            gone = w_td0 - w_rk[0]
            candidates[(0, table)] = gone if gone else w_td0
    return Round1Attribution(ciphertext=ciphertext,
                             candidates=candidates)


def nibble_candidates(attribution: Round1Attribution
                      ) -> Dict[int, Set[int]]:
    """Candidate high nibbles per round-key byte from one block."""
    out: Dict[int, Set[int]] = {}
    for (stmt, table), lines in attribution.candidates.items():
        byte_index = round1_byte_index(stmt, table)
        ct_high = attribution.ciphertext[byte_index] >> 4
        nibbles = {ct_high ^ line for line in lines}
        if byte_index in out:
            out[byte_index] &= nibbles
        else:
            out[byte_index] = nibbles
    return out


@dataclass
class KeyRecoveryResult:
    attributions: List[Round1Attribution]
    #: Final per-byte high-nibble candidate sets after intersection.
    nibble_sets: Dict[int, Set[int]]
    recovered: Dict[int, int]
    truth: bytes

    @property
    def bytes_recovered(self) -> int:
        return len(self.recovered)

    @property
    def all_correct(self) -> bool:
        return all(self.truth[i] >> 4 == nibble
                   for i, nibble in self.recovered.items())

    @property
    def bits_recovered(self) -> int:
        return 4 * len(self.recovered)


def _extract_block_trial(params, _seed: int) -> Round1Attribution:
    """One sweep trial: extract round-1 attributions for one block.
    Top-level so :mod:`repro.harness` can ship it to worker processes;
    the stepper's machine is fully seeded, so the trial seed is unused.
    Every trial after a worker's first warm-starts from the shared
    post-launch snapshot (:mod:`repro.snapshot`) and only rewrites the
    ciphertext words, so the per-block cost is the stepped window, not
    the platform build.
    """
    attack, ciphertext = params
    return attack.extract_block(ciphertext)


@dataclass
class AESKeyRecoveryAttack:
    """Run the §4.4 stepper on several blocks, attribute round 1 from
    the probe logs, and recover the round key's high nibbles.

    Blocks are independent victim runs, so :meth:`run` can fan them
    across worker processes (``workers=N``); candidate-set
    intersection is commutative, so the merged result is identical for
    any worker count.
    """

    key: bytes
    replays_per_site: int = 3

    def extract_block(self, ciphertext: bytes) -> Round1Attribution:
        """Attack one decryption end-to-end and attribute round 1."""
        attack = AESCacheAttack(self.key, ciphertext,
                                replays_per_site=self.replays_per_site)
        rep, _victim, stepper = attack._setup(prime_before_first=True)
        stepper.stop_after_rk_sites = 4   # round 1 only
        rep.machine.run(60_000_000, until=lambda _m: stepper.done)
        threshold = attack.hit_threshold(rep)
        return attribute_round1(stepper.probes, ciphertext, threshold)

    def combine(self, attributions: Sequence[Round1Attribution]
                ) -> KeyRecoveryResult:
        """Intersect per-block nibble candidates into key material."""
        combined: Dict[int, Set[int]] = {}
        for attribution in attributions:
            for byte_index, nibbles in nibble_candidates(
                    attribution).items():
                if byte_index in combined:
                    combined[byte_index] &= nibbles
                else:
                    combined[byte_index] = set(nibbles)
        recovered = {index: next(iter(nibbles))
                     for index, nibbles in combined.items()
                     if len(nibbles) == 1}
        rk = expand_decrypt_key(self.key)
        truth = b"".join(w.to_bytes(4, "big") for w in rk[0:4])
        return KeyRecoveryResult(attributions=list(attributions),
                                 nibble_sets=combined,
                                 recovered=recovered, truth=truth)

    def extract_blocks(self, ciphertexts: Sequence[bytes],
                       workers: int = 1,
                       policy=None) -> List[Round1Attribution]:
        """Extract every block's attribution, fanning independent
        victim runs across *workers* processes (1 = inline).

        *policy* is an optional
        :class:`~repro.harness.FaultPolicy`: multi-minute block
        extractions then survive worker crashes and hangs via the
        resilient runner's retry ladder (the extraction is a pure
        function of ``(key, ciphertext)``, so retried blocks merge
        bit-identically)."""
        from repro.harness import run_resilient_sweep
        sweep = run_resilient_sweep(_extract_block_trial,
                                    [(self, ct) for ct in ciphertexts],
                                    workers=workers, policy=policy,
                                    label="aes-key-recovery")
        return sweep.results()

    def run(self, ciphertexts: Sequence[bytes],
            workers: int = 1, policy=None) -> KeyRecoveryResult:
        return self.combine(
            self.extract_blocks(ciphertexts, workers, policy=policy))
