"""The Single-Secret attack (§4.2.1, Fig. 5): subnormal detection.

The victim computes ``secrets[id] / key`` exactly once.  A subnormal
operand/result makes the FP divider take its slow path (Andrysco et
al. [7]), so the victim holds the shared divider for much longer per
replay.  MicroScope replays the division in the shadow of the
``count++`` handle while the Monitor times division bursts on the SMT
sibling: the *magnitude* of the slow samples separates subnormal from
normal — per individual dynamic instruction, in one logical run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.analysis import derive_threshold
from repro.core.module import MicroScopeConfig
from repro.core.recipes import ReplayAction, ReplayDecision, WalkLocation, WalkTuning
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.config import CoreConfig
from repro.config import MachineConfig
from repro.victims.monitor import setup_port_contention_monitor
from repro.victims.single_secret import setup_single_secret_victim

#: A comfortably subnormal double.
SUBNORMAL = 5e-320


@dataclass
class SubnormalResult:
    is_subnormal_truth: bool
    samples: List[int]
    threshold: float
    #: Largest contention excursion observed (cycles over threshold).
    peak_excursion: int
    verdict: bool               # attacker's call: subnormal?
    replays: int

    @property
    def correct(self) -> bool:
        return self.verdict == self.is_subnormal_truth


@dataclass
class SubnormalDetectionAttack:
    """Detect whether one specific FP division has subnormal input."""

    measurements: int = 3000
    divs_per_sample: int = 4
    fault_handler_cost: int = 6000
    #: Excursions beyond this many cycles over the threshold indicate
    #: the slow (subnormal) divider path; the normal path's extra
    #: occupancy is bounded by one fdiv latency.
    subnormal_margin: int = 60
    walk_tuning: WalkTuning = field(default_factory=lambda: WalkTuning(
        upper=WalkLocation.PWC, leaf=WalkLocation.DRAM))

    def _replayer(self) -> Replayer:
        env = AttackEnvironment.build(
            machine_config=MachineConfig(core=CoreConfig(rdtsc_jitter=2)),
            module_config=MicroScopeConfig(
                fault_handler_cost=self.fault_handler_cost))
        return Replayer(env)

    def calibrate(self, samples: int = 1500) -> float:
        rep = self._replayer()
        monitor_proc = rep.create_monitor_process()
        monitor = setup_port_contention_monitor(
            monitor_proc, samples, self.divs_per_sample)
        rep.launch_monitor(monitor_proc, monitor.program, context_id=1)
        rep.run_until_victim_done(context_id=1, max_cycles=10_000_000)
        return derive_threshold(monitor.read_samples(monitor_proc))

    def run(self, secret_value: float, key: float = 1.0,
            threshold: Optional[float] = None) -> SubnormalResult:
        if threshold is None:
            threshold = self.calibrate()
        rep = self._replayer()
        victim_proc = rep.create_victim_process("victim")
        secrets = [1.0] * 16
        secrets[3] = secret_value
        victim = setup_single_secret_victim(victim_proc, secrets,
                                            secret_id=3, key=key)
        monitor_proc = rep.create_monitor_process("monitor")
        monitor = setup_port_contention_monitor(
            monitor_proc, self.measurements, self.divs_per_sample)
        monitor_ctx = rep.machine.contexts[1]

        def attack_fn(event) -> ReplayDecision:
            if monitor_ctx.finished():
                return ReplayDecision(ReplayAction.RELEASE)
            return ReplayDecision(ReplayAction.REPLAY)

        recipe = rep.module.provide_replay_handle(
            victim_proc, victim.count_va, name="subnormal-detect",
            attack_function=attack_fn, walk_tuning=self.walk_tuning,
            max_replays=10**9)
        rep.launch_victim(victim_proc, victim.program)
        rep.launch_monitor(monitor_proc, monitor.program, context_id=1)
        rep.arm(recipe)
        rep.machine.run(80_000_000,
                        until=lambda _m: monitor_ctx.finished()
                        and recipe.released)
        rep.run_until_victim_done(context_id=0, max_cycles=1_000_000)

        samples = monitor.read_samples(monitor_proc)
        peak = max((s - threshold) for s in samples)
        truth = self._is_subnormal(secret_value / key) or \
            self._is_subnormal(secret_value)
        verdict = peak > self.subnormal_margin
        return SubnormalResult(
            is_subnormal_truth=truth, samples=samples,
            threshold=threshold, peak_excursion=int(peak),
            verdict=verdict, replays=recipe.replays)

    @staticmethod
    def _is_subnormal(value: float) -> bool:
        return value != 0.0 and abs(value) < 2.2250738585072014e-308


@dataclass
class SecretIdResult:
    true_line: int
    extracted_line: Optional[int]
    replays: int

    @property
    def correct(self) -> bool:
        return self.extracted_line == self.true_line


@dataclass
class SecretIdExtractionAttack:
    """The §4.2.1 alternative channel on the same Fig. 5 victim:
    instead of timing the division, the Replayer Prime+Probes the
    ``secrets`` table and extracts *which cache line* ``secrets[id]``
    lives on — revealing ``id`` at line granularity."""

    replays: int = 3
    num_secrets: int = 256     # 16 cache lines of 8-byte floats
    #: Machine-level defense knobs (``None`` = stock platform).
    machine: Optional[MachineConfig] = None
    #: Replay windows the platform grants before forcing release.
    replay_budget: Optional[int] = None

    def run(self, secret_id: int) -> SecretIdResult:
        from repro.core.analysis import classify_hits, majority_lines
        rep = Replayer(AttackEnvironment.build(
            machine_config=self.machine))
        victim_proc = rep.create_victim_process("victim")
        secrets = [1.0] * self.num_secrets
        victim = setup_single_secret_victim(
            victim_proc, secrets, secret_id=secret_id, key=2.0)
        lines = (self.num_secrets * 8) // 64
        probe_addrs = [victim.secrets_va + line * 64
                       for line in range(lines)]
        module = rep.module
        threshold = rep.machine.hierarchy.hit_latency(1)
        observed = []
        limit = self.replays if self.replay_budget is None \
            else min(self.replays, self.replay_budget)

        def attack_fn(event) -> ReplayDecision:
            hits = classify_hits(
                module.probe_lines(victim_proc, probe_addrs),
                threshold)
            observed.append(hits)
            cost = module.prime_lines(victim_proc, probe_addrs)
            if event.replay_no >= limit:
                return ReplayDecision(ReplayAction.RELEASE,
                                      extra_cost=cost)
            return ReplayDecision(ReplayAction.REPLAY, extra_cost=cost)

        recipe = module.provide_replay_handle(
            victim_proc, victim.count_va, name="secret-id",
            attack_function=attack_fn)
        rep.launch_victim(victim_proc, victim.program)
        module.prime_lines(victim_proc, probe_addrs)
        rep.arm(recipe)
        rep.run_until_victim_done(context_id=0, max_cycles=5_000_000)
        stable = majority_lines(observed[1:], quorum=max(
            1, len(observed) - 1))
        extracted = stable[0] if len(stable) == 1 else None
        return SecretIdResult(true_line=(secret_id * 8) // 64,
                              extracted_line=extracted,
                              replays=recipe.replays)
