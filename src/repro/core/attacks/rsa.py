"""Extracting an RSA-style secret exponent, bit by bit, in one run.

The modexp victim (:mod:`repro.victims.rsa`) leaks each exponent bit
through whether its iteration takes the multiply path.  MicroScope
isolates iterations exactly as §4.2.2 prescribes — handle fault,
replays, pivot swap — and the Replayer Prime+Probes the multiply
path's operand line after every replay.  Because the operand line
rotates with the iteration index (as bignum limb accesses do), windows
that span a couple of iterations remain decodable: iteration *i*'s bit
is read off line ``i % 8``.

A square-and-multiply exponent leak at instruction granularity in a
single logical run is precisely the paper's "boost the effectiveness
of almost all of the above attacks" claim applied to the classic
crypto target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core.analysis import classify_hits, majority_lines
from repro.core.module import MicroScopeConfig
from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    ReplayEvent,
    WalkLocation,
    WalkTuning,
)
from repro.core.replayer import AttackEnvironment, Replayer
from repro.snapshot import warm_start
from repro.victims.rsa import MULT_BUFFER_LINES, setup_modexp_victim


@dataclass
class ModExpExtractionResult:
    exponent: int
    extracted_bits: List[Optional[int]]
    windows: List[Set[int]]
    replays: int
    result_correct: bool       # the victim still computed base^e mod m

    @property
    def true_bits(self) -> List[int]:
        return [(self.exponent >> i) & 1
                for i in range(max(self.exponent.bit_length(), 1))]

    @property
    def accuracy(self) -> float:
        truth = self.true_bits
        good = sum(1 for got, want in zip(self.extracted_bits, truth)
                   if got == want)
        return good / len(truth) if truth else 1.0

    @property
    def recovered_exponent(self) -> Optional[int]:
        if any(bit is None for bit in self.extracted_bits):
            return None
        value = 0
        for i, bit in enumerate(self.extracted_bits):
            value |= bit << i
        return value

    @property
    def exact(self) -> bool:
        return self.recovered_exponent == self.exponent


@dataclass
class ModExpExtractionAttack:
    """Single-run exponent extraction from the modexp victim."""

    base: int = 0x1234_5
    modulus: int = 0xFFFF_FFFB     # a 32-bit prime
    replays_per_iteration: int = 3
    fault_handler_cost: int = 2500
    walk_tuning: WalkTuning = field(default_factory=lambda: WalkTuning(
        upper=WalkLocation.PWC, leaf=WalkLocation.L1))

    def _build_platform(self):
        env = AttackEnvironment.build(
            module_config=MicroScopeConfig(
                fault_handler_cost=self.fault_handler_cost))
        return env, None

    def run(self, exponent: int) -> ModExpExtractionResult:
        # The exponent is a program immediate (and covered by the
        # enclave measurement), so unlike the AES/Fig. 10 victims the
        # snapshot point sits *before* victim setup: the platform build
        # is shared across exponents and the cheap per-exponent victim
        # construction is redone after every rewind.
        env, _ = warm_start(("modexp-platform", self.fault_handler_cost),
                            self._build_platform)
        rep = Replayer(env)
        victim_proc = rep.create_victim_process("modexp-victim")
        victim = setup_modexp_victim(victim_proc, self.base, exponent,
                                     self.modulus)
        bits = victim.bits
        probe_addrs = [victim.mult_buffer_va + line * 64
                       for line in range(MULT_BUFFER_LINES)]
        module = rep.module
        threshold = rep.machine.hierarchy.hit_latency(1)

        windows: List[Set[int]] = []
        replay_hits: List[List[int]] = []
        state = {"replay": 0}

        def on_handle(event: ReplayEvent) -> ReplayDecision:
            hits = classify_hits(
                module.probe_lines(victim_proc, probe_addrs), threshold)
            replay_hits.append(hits)
            state["replay"] += 1
            cost = module.prime_lines(victim_proc, probe_addrs)
            if state["replay"] < self.replays_per_iteration:
                return ReplayDecision(ReplayAction.REPLAY,
                                      extra_cost=cost)
            state["replay"] = 0
            windows.append(set(majority_lines(replay_hits)))
            replay_hits.clear()
            if len(windows) >= bits:
                return ReplayDecision(ReplayAction.RELEASE,
                                      extra_cost=cost)
            return ReplayDecision(ReplayAction.PIVOT, extra_cost=cost)

        def on_pivot(event: ReplayEvent) -> ReplayDecision:
            cost = module.prime_lines(victim_proc, probe_addrs)
            return ReplayDecision(ReplayAction.PIVOT, extra_cost=cost)

        recipe = module.provide_replay_handle(
            victim_proc, victim.handle_va, name="modexp-extract",
            attack_function=on_handle, pivot_function=on_pivot,
            walk_tuning=self.walk_tuning, max_replays=10**9)
        module.provide_pivot(recipe, victim.pivot_va)
        rep.launch_victim(victim_proc, victim.program)
        module.prime_lines(victim_proc, probe_addrs)
        rep.arm(recipe)
        rep.machine.run(
            300_000_000,
            until=lambda _m: rep.machine.contexts[0].finished())

        extracted = self._decode(windows, bits)
        result_correct = (victim.read_result(victim_proc)
                          == victim.expected_result())
        return ModExpExtractionResult(
            exponent=exponent, extracted_bits=extracted,
            windows=windows, replays=recipe.replays,
            result_correct=result_correct)

    @staticmethod
    def _decode(windows: List[Set[int]], bits: int
                ) -> List[Optional[int]]:
        """Window *i* may span iterations i..i+2; iteration *i*'s bit
        is whether line ``i % 8`` appears in window *i* (the rotation
        guarantees no two in-window iterations share a line)."""
        extracted: List[Optional[int]] = []
        for i in range(bits):
            if i >= len(windows):
                extracted.append(None)
                continue
            extracted.append(
                1 if (i % MULT_BUFFER_LINES) in windows[i] else 0)
        return extracted
