"""The Loop-Secret attack (§4.2.2, Fig. 4b).

The victim loops over a secret array, performing one secret-indexed
table access per iteration between a replay handle (``pub_addrA``) and
a pivot (``pub_addrB``).  Without MicroScope, consecutive iterations
smear together in the cache; the attack isolates them using both
§4.2.2 capabilities:

* **Window tuning** — the Replayer keeps the page walk short (upper
  levels in the PWC, leaf PTE in L1), so only a small number of
  iterations fit in each speculative window;
* **The pivot** — after extracting iteration *i*, the handle/pivot
  present-bit swap retires exactly one iteration, so window *i+1*
  starts one iteration later.

Whatever still overlaps is removed by sequence decoding: the line
belonging to iteration *i* is the one that appears in window *i* but
not in window *i+1* (later windows no longer replay iteration *i* —
the paper's disambiguation argument), with a fallback for repeated
secrets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.config import MachineConfig
from repro.core.analysis import classify_hits, majority_lines
from repro.core.module import MicroScopeConfig
from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    ReplayEvent,
    WalkLocation,
    WalkTuning,
)
from repro.core.replayer import AttackEnvironment, Replayer
from repro.victims.loop_secret import setup_loop_secret_victim


@dataclass
class LoopSecretResult:
    #: Per iteration: the table line the attack extracted (the secret),
    #: or None when ambiguous.
    extracted: List[Optional[int]]
    truth: List[int]
    replays: int
    #: Raw per-iteration window line sets (diagnostics).
    windows: List[Set[int]] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        if not self.truth:
            return 1.0
        hits = sum(1 for got, want in zip(self.extracted, self.truth)
                   if got == want)
        return hits / len(self.truth)

    @property
    def exact(self) -> bool:
        return self.extracted == self.truth


@dataclass
class LoopSecretAttack:
    """Extract each ``secret[i]`` in a single run of the victim loop."""

    replays_per_iteration: int = 3
    table_lines: int = 16
    stride: int = 64
    fault_handler_cost: int = 2500
    #: Probe measurement noise (shared channel model with the
    #: baselines): replays vote it away.
    probe_noise: float = 0.0
    #: Short walk: only upper levels in the PWC, leaf PTE in L1 — the
    #: §4.2.2 "short enough for a single secret transmission" tuning.
    walk_tuning: WalkTuning = field(default_factory=lambda: WalkTuning(
        upper=WalkLocation.PWC, leaf=WalkLocation.L1))
    #: Machine-level defense knobs (``None`` = stock platform).
    machine: Optional[MachineConfig] = None
    #: Cap on *total* replay windows across the whole loop (the
    #: cumulative ``replay_no``), as granted by budgeted defenses.
    replay_budget: Optional[int] = None

    def run(self, secrets: List[int]) -> LoopSecretResult:
        rep = Replayer(AttackEnvironment.build(
            machine_config=self.machine,
            module_config=MicroScopeConfig(
                fault_handler_cost=self.fault_handler_cost,
                probe_noise=self.probe_noise)))
        victim_proc = rep.create_victim_process("loop-victim")
        victim = setup_loop_secret_victim(
            victim_proc, secrets, table_lines=self.table_lines,
            stride=self.stride)
        probe_addrs = [victim.table_line_va(line)
                       for line in range(self.table_lines)]
        module = rep.module
        threshold = rep.machine.hierarchy.hit_latency(1)

        windows: List[Set[int]] = []
        replay_hits: List[List[int]] = []
        state = {"replay": 0}

        def on_handle(event: ReplayEvent) -> ReplayDecision:
            hits = classify_hits(
                module.probe_lines(victim_proc, probe_addrs), threshold)
            replay_hits.append(hits)
            state["replay"] += 1
            cost = module.prime_lines(victim_proc, probe_addrs)
            if self.replay_budget is not None \
                    and event.replay_no >= self.replay_budget:
                # The platform is out of replay windows: salvage the
                # partial window and let the victim run free.
                windows.append(set(majority_lines(replay_hits)))
                replay_hits.clear()
                return ReplayDecision(ReplayAction.RELEASE,
                                      extra_cost=cost)
            if state["replay"] < self.replays_per_iteration:
                return ReplayDecision(ReplayAction.REPLAY,
                                      extra_cost=cost)
            state["replay"] = 0
            windows.append(set(majority_lines(replay_hits)))
            replay_hits.clear()
            if len(windows) >= len(secrets):
                return ReplayDecision(ReplayAction.RELEASE,
                                      extra_cost=cost)
            return ReplayDecision(ReplayAction.PIVOT, extra_cost=cost)

        def on_pivot(event: ReplayEvent) -> ReplayDecision:
            cost = module.prime_lines(victim_proc, probe_addrs)
            return ReplayDecision(ReplayAction.PIVOT, extra_cost=cost)

        recipe = module.provide_replay_handle(
            victim_proc, victim.handle_va, name="loop-secret",
            attack_function=on_handle, pivot_function=on_pivot,
            walk_tuning=self.walk_tuning, max_replays=10**9)
        module.provide_pivot(recipe, victim.pivot_va)
        rep.launch_victim(victim_proc, victim.program)
        module.prime_lines(victim_proc, probe_addrs)
        rep.arm(recipe)
        rep.machine.run(
            100_000_000,
            until=lambda _m: rep.machine.contexts[0].finished())

        extracted = self._decode(windows, len(secrets))
        return LoopSecretResult(extracted=extracted,
                                truth=list(secrets),
                                replays=recipe.replays,
                                windows=windows)

    @staticmethod
    def _decode(windows: List[Set[int]], n: int) -> List[Optional[int]]:
        """Backward sequence decoding.

        Window *i* holds ``{s_i, ..., s_{i+span-1}}`` for a small span
        (the walk-tuned window covers a couple of iterations), so going
        backwards: once ``s_{i+1}..`` are known, iteration *i*'s line
        is the window-*i* element the future doesn't explain.  When the
        future explains everything (a repeated secret), prefer the
        adjacent repeat — the only genuinely ambiguous case is a
        repeat, and windows shrink as the loop ends, seeding the pass
        with singletons.
        """
        extracted: List[Optional[int]] = [None] * n
        # Pass 1 — forward differencing: a line present in window i but
        # absent from window i+1 was consumed by iteration i (later
        # windows no longer replay it — the §4.2.2 argument).
        for i in range(min(n, len(windows))):
            window = windows[i]
            if len(window) == 1:
                extracted[i] = next(iter(window))
                continue
            nxt = windows[i + 1] if i + 1 < len(windows) else set()
            gone = window - nxt
            if len(gone) == 1:
                extracted[i] = next(iter(gone))
        # Pass 2 — backward repair for repeated secrets: when the
        # future fully explains window i, iteration i repeats an
        # adjacent value.
        for i in range(min(n, len(windows)) - 1, -1, -1):
            if extracted[i] is not None:
                continue
            window = windows[i]
            future = {extracted[j] for j in range(i + 1, min(i + 4, n))
                      if extracted[j] is not None}
            unexplained = window - future
            if len(unexplained) == 1:
                extracted[i] = next(iter(unexplained))
            elif not unexplained and i + 1 < n \
                    and extracted[i + 1] in window:
                extracted[i] = extracted[i + 1]
        return extracted
