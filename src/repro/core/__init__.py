"""MicroScope: the paper's primary contribution.

The framework has four layers:

* :mod:`repro.core.recipes` — Attack Recipes (§5.2.1);
* :mod:`repro.core.module` — the kernel module with the Table-2 API
  and the Fig.-9 fault trampoline (§5);
* :mod:`repro.core.replayer` — the Replayer orchestration driver
  (Fig. 3);
* :mod:`repro.core.attacks` — the concrete attacks of §4, §6 and §7.

Supporting analysis (thresholding, confidence, AES key recovery) lives
in :mod:`repro.core.analysis`; replay-handle discovery (§4.1.1) in
:mod:`repro.core.handles`.
"""

from repro.core.analysis import (
    ConfidenceTracker,
    ContentionSummary,
    IndexObservation,
    LineObservation,
    assemble_round_key,
    classify_hits,
    count_above,
    derive_threshold,
    majority_lines,
    recover_high_nibbles,
    recover_round_key,
    round1_byte_index,
    summarize,
)
from repro.core.handles import (
    HandleCandidate,
    count_memory_instructions,
    find_replay_handles,
)
from repro.core.module import MicroScopeConfig, MicroScopeModule, MicroScopeStats
from repro.core.recipes import (
    AttackRecipe,
    ReplayAction,
    ReplayDecision,
    ReplayEvent,
    WalkLocation,
    WalkTuning,
    replay_n_times,
)
from repro.core.replayer import AttackEnvironment, Replayer

__all__ = [
    "ConfidenceTracker",
    "ContentionSummary",
    "IndexObservation",
    "LineObservation",
    "assemble_round_key",
    "classify_hits",
    "count_above",
    "derive_threshold",
    "majority_lines",
    "recover_high_nibbles",
    "recover_round_key",
    "round1_byte_index",
    "summarize",
    "HandleCandidate",
    "count_memory_instructions",
    "find_replay_handles",
    "MicroScopeConfig",
    "MicroScopeModule",
    "MicroScopeStats",
    "AttackRecipe",
    "ReplayAction",
    "ReplayDecision",
    "ReplayEvent",
    "WalkLocation",
    "WalkTuning",
    "replay_n_times",
    "AttackEnvironment",
    "Replayer",
]
