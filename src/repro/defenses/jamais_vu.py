"""Deprecated alias of :mod:`repro.evaluation.defenses.jamais_vu`."""

import warnings

warnings.warn(
    "repro.defenses.jamais_vu is deprecated; import from "
    "repro.evaluation.defenses.jamais_vu instead",
    DeprecationWarning, stacklevel=2)


def __getattr__(name):
    """PEP 562 forwarding to the canonical module."""
    import repro.evaluation.defenses.jamais_vu as _canonical

    try:
        return getattr(_canonical, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
