"""Deprecated alias of :mod:`repro.evaluation.defenses.dejavu`."""

import warnings

warnings.warn(
    "repro.defenses.dejavu is deprecated; import from "
    "repro.evaluation.defenses.dejavu instead",
    DeprecationWarning, stacklevel=2)


def __getattr__(name):
    """PEP 562 forwarding to the canonical module."""
    import repro.evaluation.defenses.dejavu as _canonical

    try:
        return getattr(_canonical, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
