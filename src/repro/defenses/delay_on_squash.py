"""Deprecated alias of :mod:`repro.evaluation.defenses.delay_on_squash`."""

import warnings

warnings.warn(
    "repro.defenses.delay_on_squash is deprecated; import from "
    "repro.evaluation.defenses.delay_on_squash instead",
    DeprecationWarning, stacklevel=2)


def __getattr__(name):
    """PEP 562 forwarding to the canonical module."""
    import repro.evaluation.defenses.delay_on_squash as _canonical

    try:
        return getattr(_canonical, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
