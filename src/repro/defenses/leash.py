"""Deprecated alias of :mod:`repro.evaluation.defenses.leash`."""

import warnings

warnings.warn(
    "repro.defenses.leash is deprecated; import from "
    "repro.evaluation.defenses.leash instead",
    DeprecationWarning, stacklevel=2)


def __getattr__(name):
    """PEP 562 forwarding to the canonical module."""
    import repro.evaluation.defenses.leash as _canonical

    try:
        return getattr(_canonical, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
