"""Deprecated alias of :mod:`repro.evaluation.defenses.simf`."""

import warnings

warnings.warn(
    "repro.defenses.simf is deprecated; import from "
    "repro.evaluation.defenses.simf instead",
    DeprecationWarning, stacklevel=2)


def __getattr__(name):
    """PEP 562 forwarding to the canonical module."""
    import repro.evaluation.defenses.simf as _canonical

    try:
        return getattr(_canonical, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
