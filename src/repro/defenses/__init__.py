"""Section 8 countermeasures and their evaluation."""

from repro.defenses.dejavu import (
    DejaVuReport,
    build_clock_program,
    build_timed_victim,
    evaluate_dejavu,
)
from repro.defenses.fences import FenceDefenseReport, evaluate_fence_on_flush
from repro.defenses.pf_oblivious import (
    ObliviousCFVictim,
    PFObliviousReport,
    evaluate_pf_obliviousness,
    page_trace,
    setup_oblivious_cf_victim,
)
from repro.defenses.tsgx import (
    TSGX_THRESHOLD,
    TSGXReport,
    evaluate_tsgx,
    wrap_with_tsgx,
)

__all__ = [
    "DejaVuReport",
    "build_clock_program",
    "build_timed_victim",
    "evaluate_dejavu",
    "FenceDefenseReport",
    "evaluate_fence_on_flush",
    "ObliviousCFVictim",
    "PFObliviousReport",
    "evaluate_pf_obliviousness",
    "page_trace",
    "setup_oblivious_cf_victim",
    "TSGX_THRESHOLD",
    "TSGXReport",
    "evaluate_tsgx",
    "wrap_with_tsgx",
]
