"""Deprecated alias of :mod:`repro.evaluation.defenses`.

The §8 countermeasures moved to ``repro.evaluation.defenses`` (their
single canonical home, next to the matrix specs they parameterise).
This package re-exports everything from there with a
:class:`DeprecationWarning`, mirroring the ``repro.config`` migration
pattern; it will be removed in a future release.
"""

import warnings

warnings.warn(
    "repro.defenses is deprecated; import from "
    "repro.evaluation.defenses instead",
    DeprecationWarning, stacklevel=2)

__all__ = [
    "DejaVuReport",
    "build_clock_program",
    "build_timed_victim",
    "evaluate_dejavu",
    "FenceDefenseReport",
    "count_transmit_issues",
    "evaluate_fence_on_flush",
    "ObliviousCFVictim",
    "PFObliviousReport",
    "evaluate_pf_obliviousness",
    "page_trace",
    "setup_oblivious_cf_victim",
    "TSGX_THRESHOLD",
    "TSGXReport",
    "evaluate_tsgx",
    "wrap_with_tsgx",
    "DefenseMechanism",
    "MECHANISMS",
    "build_mechanism",
    "install_defense",
    "nonspeculative",
    "register_mechanism",
    "JAMAIS_VU_VARIANTS",
    "JamaisVuMechanism",
    "JamaisVuReport",
    "evaluate_jamais_vu",
    "jamais_vu_machine",
    "SIDE_CHANNEL_CLASSES",
    "DelayOnSquashMechanism",
    "DelayOnSquashReport",
    "delay_on_squash_machine",
    "evaluate_delay_on_squash",
    "SIMFFlushMechanism",
    "SIMFReport",
    "evaluate_simf",
    "is_kernel_entry",
    "simf_machine",
    "LeashMechanism",
    "LeashReport",
    "evaluate_leash",
    "leash_machine",
]


def __getattr__(name):
    """PEP 562 forwarding to the canonical package."""
    import repro.evaluation.defenses as _canonical

    try:
        return getattr(_canonical, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
