"""Branch prediction.

A classic two-bit saturating-counter direction predictor indexed by
instruction address.  Two properties matter for MicroScope:

* predictor state *persists across squashes and replays* — §4.2.3 uses
  exactly this ("whether there is a misprediction leaks the secret");
* the table can be flushed, modelling the enclave-boundary predictor
  flush countermeasure [12], and primed to a chosen state, modelling
  the Spectre-style priming the paper mentions.
"""

from __future__ import annotations

from repro.observability.stats import PredictorStats

__all__ = ["BranchPredictor", "PredictorStats", "STRONG_NOT_TAKEN",
           "WEAK_NOT_TAKEN", "WEAK_TAKEN", "STRONG_TAKEN"]

#: Two-bit counter states.
STRONG_NOT_TAKEN, WEAK_NOT_TAKEN, WEAK_TAKEN, STRONG_TAKEN = 0, 1, 2, 3


class BranchPredictor:
    """Two-bit bimodal predictor."""

    def __init__(self, entries: int = 512, initial: int = WEAK_NOT_TAKEN):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._initial = initial
        self._table = [initial] * entries
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at *pc* (True = taken)."""
        self.stats.predictions += 1
        return self._table[self._index(pc)] >= WEAK_TAKEN

    def peek(self, pc: int) -> int:
        """Raw counter value (no stats side effects)."""
        return self._table[self._index(pc)]

    def update(self, pc: int, taken: bool, mispredicted: bool):
        """Train the counter with the resolved direction."""
        if mispredicted:
            self.stats.mispredictions += 1
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(counter + 1, STRONG_TAKEN)
        else:
            self._table[index] = max(counter - 1, STRONG_NOT_TAKEN)

    def flush(self):
        """Reset every counter — the enclave-boundary countermeasure.
        Note the paper's observation: flushing puts the predictor into
        a *known public state*, which itself helps the attacker."""
        self._table = [self._initial] * self.entries

    def prime(self, pc: int, taken: bool):
        """Force the counter for *pc* into a strong state — the
        attacker-controlled priming of §4.2.3."""
        self._table[self._index(pc)] = (
            STRONG_TAKEN if taken else STRONG_NOT_TAKEN)

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        return (list(self._table), self.stats.capture())

    def restore(self, state: tuple):
        table, stats = state
        self._table = list(table)
        self.stats.restore(stats)
