"""The simulated machine: memory system + cores + a global clock.

A :class:`Machine` wires one physical memory, one cache hierarchy, one
TLB hierarchy and page walker, and one SMT core together (the paper's
attack plays out on a single physical core; the Replayer runs as kernel
code, not on its own core).  The kernel from :mod:`repro.kernel`
attaches itself as the machine's trap handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cpu.config import CoreConfig
from repro.cpu.core import Core
from repro.cpu.traps import TrapHandler
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.physical import PhysicalMemory
from repro.vm.pwc import PageWalkCache, PWCConfig
from repro.vm.tlb import TLBHierarchy, TLBHierarchyConfig
from repro.vm.walker import PageWalker


@dataclass
class MachineConfig:
    """Top-level configuration of the whole simulated platform."""

    core: CoreConfig = field(default_factory=CoreConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    tlbs: TLBHierarchyConfig = field(default_factory=TLBHierarchyConfig)
    pwc: PWCConfig = field(default_factory=PWCConfig)
    #: Physical memory size in 4 KiB frames (default 256 MiB).
    num_frames: int = 1 << 16


class Machine:
    """One simulated platform with a single SMT core."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()
        self.phys = PhysicalMemory(self.config.num_frames)
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.tlbs = TLBHierarchy(self.config.tlbs)
        self.pwc = PageWalkCache(self.config.pwc)
        self.walker = PageWalker(self.phys, self.hierarchy, self.pwc)
        self.core = Core(0, self.config.core, self.phys, self.hierarchy,
                         self.tlbs, self.walker)

    @property
    def cycle(self) -> int:
        return self.core.cycle

    @property
    def contexts(self):
        return self.core.contexts

    def set_trap_handler(self, handler: TrapHandler):
        self.core.trap_handler = handler

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Clone the whole platform's mutable state (see
        :mod:`repro.snapshot` for the composed, versioned snapshot)."""
        return (self.phys.capture(), self.hierarchy.capture(),
                self.tlbs.capture(), self.pwc.capture(),
                self.walker.capture(), self.core.capture())

    def restore(self, state: tuple):
        phys, hierarchy, tlbs, pwc, walker, core = state
        self.phys.restore(phys)
        self.hierarchy.restore(hierarchy)
        self.tlbs.restore(tlbs)
        self.pwc.restore(pwc)
        self.walker.restore(walker)
        self.core.restore(core)

    def step(self, cycles: int = 1):
        """Advance the machine by *cycles* cycles."""
        for _ in range(cycles):
            self.core.step()

    def run(self, max_cycles: int = 1_000_000,
            until: Optional[Callable[["Machine"], bool]] = None) -> int:
        """Run until *until* returns True, all contexts finish, or the
        cycle budget is exhausted.  Returns cycles executed.

        With ``core.config.fast_forward`` set, provably-empty cycles
        are skipped in one jump; *until* predicates must therefore
        depend on simulation state (which cannot change during skipped
        cycles), not on raw cycle numbers — use :meth:`run_until_cycle`
        to stop at an exact cycle.
        """
        start = self.cycle
        core = self.core
        limit = start + max_cycles
        fast = core.config.fast_forward
        if until is None:
            # Common case: no per-cycle predicate call in the loop.
            while self.cycle < limit:
                if not core.busy():
                    break
                if fast:
                    core.fast_forward(limit)
                    if self.cycle >= limit:
                        break
                core.step()
        else:
            while self.cycle < limit:
                if until(self):
                    break
                if not core.busy():
                    break
                if fast:
                    core.fast_forward(limit)
                    if self.cycle >= limit:
                        break
                core.step()
        return self.cycle - start

    def run_until_cycle(self, cycle: int,
                        until: Optional[Callable[["Machine"], bool]]
                        = None) -> int:
        """Run until the global clock reaches *cycle* (or *until* /
        completion stops the run earlier).  Fast-forward jumps are
        clamped to *cycle*, so this is exact under either scheduler.
        Returns cycles executed."""
        if cycle <= self.cycle:
            return 0
        return self.run(max_cycles=cycle - self.cycle, until=until)

    def run_context_to_completion(self, context_id: int,
                                  max_cycles: int = 1_000_000) -> int:
        """Run until context *context_id* finishes."""
        context = self.contexts[context_id]
        return self.run(max_cycles, until=lambda _m: context.finished())
