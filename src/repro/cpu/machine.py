"""The simulated machine: memory system + cores + a global clock.

A :class:`Machine` wires one physical memory, one cache hierarchy, one
TLB hierarchy and page walker, and one SMT core together (the paper's
attack plays out on a single physical core; the Replayer runs as kernel
code, not on its own core).  The kernel from :mod:`repro.kernel`
attaches itself as the machine's trap handler.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.cpu.core import Core
from repro.cpu.traps import TrapHandler
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.physical import PhysicalMemory
from repro.observability.profiler import RunProfile, note_machine
from repro.observability.registry import MetricsRegistry
from repro.oracle.runtime import note_machine as _oracle_note_machine
from repro.vm.pwc import PageWalkCache
from repro.vm.tlb import TLBHierarchy
from repro.vm.walker import PageWalker

if TYPE_CHECKING:
    from repro.config import MachineConfig


def __getattr__(name: str):
    # MachineConfig moved to repro.config; keep the old import path
    # alive (PEP 562) with a deprecation signal.
    if name == "MachineConfig":
        warnings.warn(
            "importing MachineConfig from repro.cpu.machine is "
            "deprecated; import it from repro.config (or repro)",
            DeprecationWarning, stacklevel=2)
        from repro.config import MachineConfig
        return MachineConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Machine:
    """One simulated platform with a single SMT core."""

    def __init__(self, config: Optional[MachineConfig] = None):
        if config is None:
            from repro.config import MachineConfig
            config = MachineConfig()
        self.config = config
        self.phys = PhysicalMemory(self.config.num_frames)
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.tlbs = TLBHierarchy(self.config.tlbs)
        self.pwc = PageWalkCache(self.config.pwc)
        self.walker = PageWalker(self.phys, self.hierarchy, self.pwc)
        self.core = Core(0, self.config.core, self.phys, self.hierarchy,
                         self.tlbs, self.walker)
        #: The machine-wide metric index.  Groups are bound by
        #: reference; subsystems keep plain attribute increments.
        self.metrics = MetricsRegistry()
        self._register_metrics()
        #: Installed DefenseMechanism, or None.  Resolved from
        #: ``config.defense`` after the metrics registry exists so
        #: mechanisms can create their counters in ``attach``.
        self.defense = None
        if self.config.defense is not None and self.config.defense.scheme:
            from repro.evaluation.defenses.mechanisms import install_defense
            self.defense = install_defense(self, self.config.defense)
        #: Active EventTracer, or None (the zero-cost default).
        self.tracer = None
        note_machine(self)
        _oracle_note_machine(self)

    def _register_metrics(self):
        metrics = self.metrics
        for cache in self.hierarchy.levels:
            metrics.register_group(f"mem.{cache.name.lower()}",
                                   cache.stats)
        metrics.register_group("mem.hierarchy", self.hierarchy.stats)
        metrics.register_group("vm.tlb.l1d", self.tlbs.l1d.stats)
        metrics.register_group("vm.tlb.l1i", self.tlbs.l1i.stats)
        metrics.register_group("vm.tlb.l2", self.tlbs.l2.stats)
        metrics.register_group("vm.pwc", self.pwc.stats)
        metrics.register_group("vm.walker", self.walker.stats)
        self.walker.bind_latency_histogram(
            metrics.histogram("vm.walker.latency_cycles"))
        metrics.register_group("cpu.predictor", self.core.predictor.stats)
        for port in self.core.ports.ports:
            metrics.register_group(f"cpu.port.{port.name.lower()}",
                                   port.stats)
        for context in self.core.contexts:
            metrics.register_group(f"cpu.ctx{context.context_id}",
                                   context.stats)

    @property
    def cycle(self) -> int:
        return self.core.cycle

    @property
    def contexts(self):
        return self.core.contexts

    def set_trap_handler(self, handler: TrapHandler):
        self.core.trap_handler = handler

    # --- observability ----------------------------------------------------

    def attach_tracer(self, tracer):
        """Attach an :class:`~repro.observability.tracer.EventTracer`.
        The core starts emitting pipeline events; the kernel and the
        MicroScope module pick the tracer up per fault through
        ``machine.tracer``."""
        self.tracer = tracer
        self.core.tracer = tracer

    def detach_tracer(self):
        """Return to the zero-cost no-tracing configuration."""
        self.tracer = None
        self.core.tracer = None

    @contextmanager
    def profile(self, label: str = "run") -> Iterator[RunProfile]:
        """Profile a region: ``with machine.profile("attack") as prof``
        yields a :class:`RunProfile`; on exit it holds cycles, host
        seconds and cycles/second for the region."""
        prof = RunProfile(label, self.cycle)
        try:
            yield prof
        finally:
            prof.finish(self.cycle)

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Clone the whole platform's mutable state (see
        :mod:`repro.snapshot` for the composed, versioned snapshot)."""
        payload = (self.phys.capture(), self.hierarchy.capture(),
                   self.tlbs.capture(), self.pwc.capture(),
                   self.walker.capture(), self.core.capture(),
                   self.metrics.capture())
        if self.defense is not None:
            # Appended only when a defense is installed, so default
            # platforms keep their historical payload shape (and the
            # digests / memo keys derived from it).
            payload = payload + (self.defense.capture(),)
        return payload

    def restore(self, state: tuple):
        if self.defense is not None:
            if len(state) < 8:
                raise ValueError(
                    "snapshot lacks defense state but a defense "
                    "mechanism is installed")
            self.defense.restore(state[7])
        phys, hierarchy, tlbs, pwc, walker, core, metrics = state[:7]
        self.phys.restore(phys)
        self.hierarchy.restore(hierarchy)
        self.tlbs.restore(tlbs)
        self.pwc.restore(pwc)
        self.walker.restore(walker)
        self.core.restore(core)
        self.metrics.restore(metrics)

    def step(self, cycles: int = 1):
        """Advance the machine by *cycles* cycles."""
        for _ in range(cycles):
            self.core.step()

    def run(self, max_cycles: int = 1_000_000,
            until: Optional[Callable[["Machine"], bool]] = None) -> int:
        """Run until *until* returns True, all contexts finish, or the
        cycle budget is exhausted.  Returns cycles executed.

        With ``core.config.fast_forward`` set, provably-empty cycles
        are skipped in one jump; *until* predicates must therefore
        depend on simulation state (which cannot change during skipped
        cycles), not on raw cycle numbers — use :meth:`run_until_cycle`
        to stop at an exact cycle.
        """
        start = self.cycle
        core = self.core
        limit = start + max_cycles
        fast = core.config.fast_forward
        if until is None:
            # Common case: no per-cycle predicate call in the loop.
            while self.cycle < limit:
                if not core.busy():
                    break
                if fast:
                    core.fast_forward(limit)
                    if self.cycle >= limit:
                        break
                core.step()
        else:
            while self.cycle < limit:
                if until(self):
                    break
                if not core.busy():
                    break
                if fast:
                    core.fast_forward(limit)
                    if self.cycle >= limit:
                        break
                core.step()
        return self.cycle - start

    def run_until_cycle(self, cycle: int,
                        until: Optional[Callable[["Machine"], bool]]
                        = None) -> int:
        """Run until the global clock reaches *cycle* (or *until* /
        completion stops the run earlier).  Fast-forward jumps are
        clamped to *cycle*, so this is exact under either scheduler.
        Returns cycles executed."""
        if cycle <= self.cycle:
            return 0
        return self.run(max_cycles=cycle - self.cycle, until=until)

    def run_context_to_completion(self, context_id: int,
                                  max_cycles: int = 1_000_000) -> int:
        """Run until context *context_id* finishes."""
        context = self.contexts[context_id]
        return self.run(max_cycles, until=lambda _m: context.finished())
