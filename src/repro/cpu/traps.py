"""Trap interface between the core and supervisor software.

The core never contains OS policy: when a faulting instruction reaches
the head of the ROB (precise exception) or an interrupt is taken, it
calls a :class:`TrapHandler` and obeys the returned
:class:`TrapAction`.  The kernel package implements the handler; the
MicroScope module hooks the kernel's page-fault path (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vm.faults import PageFault


@dataclass
class TrapAction:
    """What the supervisor tells the core to do after a trap.

    ``cost`` simulated cycles pass with the context blocked (the kernel
    runs on the victim's logical core); then the context resumes at
    ``resume_index`` (defaults to the faulting instruction — the replay
    semantics the attack relies on) unless ``halt`` is set.
    """

    cost: int = 0
    resume_index: Optional[int] = None
    halt: bool = False


class TrapHandler:
    """Interface implemented by the simulated kernel."""

    def handle_page_fault(self, context, fault: PageFault) -> TrapAction:
        raise NotImplementedError

    def handle_interrupt(self, context, reason: str) -> TrapAction:
        raise NotImplementedError


class PanicTrapHandler(TrapHandler):
    """Default handler: any trap is a simulation configuration error."""

    def handle_page_fault(self, context, fault: PageFault) -> TrapAction:
        raise RuntimeError(f"unhandled {fault.describe()}")

    def handle_interrupt(self, context, reason: str) -> TrapAction:
        raise RuntimeError(f"unhandled interrupt: {reason}")
