"""Reorder buffer entries and per-context ROB.

Every in-flight instruction lives in exactly one :class:`ROBEntry`.
Entries move through the classic lifecycle::

    DISPATCHED -> READY -> EXECUTING -> COMPLETED -> (retired)

with two exits off the main path: *squashed* (branch mispredict, fault
at head, transaction abort) and *faulted* (completed carrying a page
fault instead of a value — the precise-exception case MicroScope turns
into a replay engine).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional

from repro.isa.instructions import Instruction
from repro.vm.faults import PageFault


class EntryState(enum.Enum):
    DISPATCHED = "dispatched"   # in ROB, waiting on operands
    READY = "ready"             # operands available, waiting for a port
    EXECUTING = "executing"     # issued to a port
    COMPLETED = "completed"     # result (or fault) available


class ROBEntry:
    """One reorder-buffer slot."""

    __slots__ = (
        "seq", "context_id", "index", "instr", "op_cls", "state",
        "pending", "operands", "value", "addr", "paddr", "fault",
        "dependents", "predicted_taken", "actual_taken", "mispredicted",
        "store_value", "addr_resolved", "squashed", "issue_cycle",
        "complete_cycle", "port_name", "walk_latency", "is_replay",
    )

    def __init__(self, seq: int, context_id: int, index: int,
                 instr: Instruction, op_cls: str):
        self.seq = seq
        self.context_id = context_id
        #: Program instruction index (our PC).
        self.index = index
        self.instr = instr
        self.op_cls = op_cls
        self.state = EntryState.DISPATCHED
        #: Number of unresolved source operands.
        self.pending = 0
        #: Resolved operand values, slot 0 = rs1, slot 1 = rs2.
        self.operands: List[Optional[object]] = [None, None]
        self.value: Optional[object] = None
        #: Virtual / physical address for memory ops.
        self.addr: Optional[int] = None
        self.paddr: Optional[int] = None
        self.fault: Optional[PageFault] = None
        #: Entries waiting on this one: list of (entry, slot).
        self.dependents: List[tuple] = []
        self.predicted_taken: Optional[bool] = None
        self.actual_taken: Optional[bool] = None
        self.mispredicted = False
        #: Value to be stored (for stores), resolved at execute.
        self.store_value: Optional[object] = None
        #: For stores: address computed (forwarding decisions possible).
        self.addr_resolved = False
        self.squashed = False
        self.issue_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None
        self.port_name: Optional[str] = None
        #: Page-walk latency incurred by this access (diagnostics).
        self.walk_latency = 0
        #: True when this entry is a re-execution of a previously
        #: squashed dynamic instruction (replay accounting).
        self.is_replay = False

    @property
    def completed(self) -> bool:
        return self.state is EntryState.COMPLETED

    @property
    def faulted(self) -> bool:
        return self.fault is not None

    def __repr__(self) -> str:
        return (f"<ROBEntry seq={self.seq} ctx={self.context_id} "
                f"idx={self.index} {self.instr.op.value} "
                f"{self.state.value}{' FAULT' if self.faulted else ''}>")


#: ROBEntry slots copied verbatim when cloning.  ``instr`` (immutable
#: program text) and ``fault`` (frozen dataclass) are shared by
#: reference; ``operands`` and ``dependents`` need fresh containers.
_SCALAR_SLOTS = tuple(s for s in ROBEntry.__slots__
                      if s not in ("operands", "dependents"))


def clone_entry(entry: Optional[ROBEntry], memo: dict
                ) -> Optional[ROBEntry]:
    """Deep-copy *entry* and (recursively) its dependents.

    *memo* maps ``id(original) -> clone`` and must be shared across
    every structure captured from one core — the same in-flight entry
    is referenced from the ROB, the rename map, the ready queue, the
    in-flight-load index and the event heap, and restoring must rebuild
    exactly that aliasing.  Callers must keep the originals alive while
    the memo is in use (ids are only unique among live objects).
    """
    if entry is None:
        return None
    clone = memo.get(id(entry))
    if clone is not None:
        return clone
    clone = ROBEntry.__new__(ROBEntry)
    memo[id(entry)] = clone
    for slot in _SCALAR_SLOTS:
        setattr(clone, slot, getattr(entry, slot))
    clone.operands = list(entry.operands)
    clone.dependents = [(clone_entry(dep, memo), slot)
                        for dep, slot in entry.dependents]
    return clone


class ReorderBuffer:
    """Program-ordered queue of in-flight instructions for one context."""

    __slots__ = ("capacity", "entries", "_stores")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self.entries: Deque[ROBEntry] = deque()
        #: In-flight stores only, program order — lets the load path
        #: search the store buffer without walking the whole ROB.
        self._stores: Deque[ROBEntry] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self.entries

    @property
    def head(self) -> Optional[ROBEntry]:
        return self.entries[0] if self.entries else None

    def push(self, entry: ROBEntry):
        if self.full:
            raise OverflowError("ROB overflow")
        self.entries.append(entry)
        if entry.instr.is_store:
            self._stores.append(entry)

    def pop_head(self) -> ROBEntry:
        head = self.entries.popleft()
        if self._stores and self._stores[0] is head:
            self._stores.popleft()
        return head

    def squash_younger_than(self, seq: int) -> List[ROBEntry]:
        """Remove and return every entry with ``entry.seq > seq``
        (marking them squashed).  ``seq = -1`` squashes everything."""
        survivors: Deque[ROBEntry] = deque()
        squashed: List[ROBEntry] = []
        keep = survivors.append
        drop = squashed.append
        for entry in self.entries:
            if entry.seq > seq:
                entry.squashed = True
                drop(entry)
            else:
                keep(entry)
        self.entries = survivors
        if squashed:
            self._stores = deque(e for e in self._stores
                                 if not e.squashed)
        return squashed

    def stores_older_than(self, seq: int) -> List[ROBEntry]:
        """In-flight stores older than *seq*, oldest first."""
        stores: List[ROBEntry] = []
        take = stores.append
        for e in self._stores:     # program order, so seqs ascend
            if e.seq >= seq:
                break
            take(e)
        return stores

    def all_older_completed(self, seq: int) -> bool:
        """True when every entry older than *seq* has completed.
        Entries are program-ordered, so stop at the first younger one."""
        completed = EntryState.COMPLETED
        for e in self.entries:
            if e.seq >= seq:
                return True
            if e.state is not completed:
                return False
        return True

    # --- snapshot support -------------------------------------------------

    def capture(self, memo: dict) -> tuple:
        return ([clone_entry(e, memo) for e in self.entries],
                [clone_entry(e, memo) for e in self._stores])

    def restore(self, state: tuple, memo: dict):
        entries, stores = state
        self.entries = deque(clone_entry(e, memo) for e in entries)
        self._stores = deque(clone_entry(e, memo) for e in stores)
