"""The out-of-order, SMT-enabled core.

Per cycle the core performs, in order:

1. **Complete** — pop finished executions off the event heap, write
   back results, wake dependents, resolve branch mispredictions.
2. **Abort** — process pending TSX aborts.
3. **Retire** — per context, retire completed instructions in program
   order from the ROB head; a faulted head triggers the precise
   page-fault trap (or a transaction abort when inside TSX).
4. **Dispatch** — issue ready instructions to execution ports, SMT
   round-robin, oldest first.  Loads translate through TLB → page walk
   here, which is where the MicroScope speculation window opens.
5. **Fetch/decode** — pull instructions from the (predicted) control
   flow into the ROB.

Everything MicroScope needs emerges from these rules: instructions
younger than a page-faulting load execute in its shadow and leave
microarchitectural residue, then are squashed and re-fetched when the
OS keeps the page non-present — the replay.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Callable, List, Optional, Tuple

from repro.cpu.branch import BranchPredictor
from repro.cpu.config import CoreConfig, op_class
from repro.cpu.context import ContextState, HardwareContext, TransactionState
from repro.cpu.ports import PortSet
from repro.cpu.rob import EntryState, ROBEntry, clone_entry
from repro.cpu.traps import PanicTrapHandler, TrapHandler
from repro.isa.instructions import Instruction, Opcode
from repro.mem.cache import line_of
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.physical import PhysicalMemory
from repro.vm import address as vaddr
from repro.vm.tlb import TLBHierarchy
from repro.vm.walker import PageWalker

MASK64 = (1 << 64) - 1
#: Smallest positive normal double; operands/results below this are
#: subnormal and take the slow divider path.
_MIN_NORMAL = 2.2250738585072014e-308


def _to_signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def _is_subnormal(value: float) -> bool:
    return value != 0.0 and abs(value) < _MIN_NORMAL and math.isfinite(value)


class Core:
    """One physical core with ``config.num_contexts`` SMT contexts."""

    def __init__(self, core_id: int, config: CoreConfig,
                 phys: PhysicalMemory, hierarchy: MemoryHierarchy,
                 tlbs: TLBHierarchy, walker: PageWalker):
        self.core_id = core_id
        self.config = config
        self.phys = phys
        self.hierarchy = hierarchy
        self.tlbs = tlbs
        self.walker = walker
        self.cycle = 0
        self.contexts: List[HardwareContext] = [
            HardwareContext(i, config.rob_size)
            for i in range(config.num_contexts)]
        self.ports = PortSet(config.ports, config.non_pipelined)
        self.predictor = BranchPredictor(config.predictor_entries)
        self.trap_handler: TrapHandler = PanicTrapHandler()
        self._events: List[Tuple[int, int, ROBEntry]] = []
        self._event_tiebreak = 0
        self._rdrand = random.Random(config.rdrand_seed)
        self._jitter = random.Random(config.rdtsc_jitter_seed)
        self.retire_hooks: List[Callable[[HardwareContext, ROBEntry], None]] = []
        #: Optional PipelineTracer (repro.cpu.trace) receiving
        #: fetch/issue/complete/retire/squash notifications.
        self.tracer = None
        #: Called after every successful issue; lets experiments model
        #: an SMT observer watching which units the sibling uses.
        self.issue_hooks: List[Callable[[HardwareContext, ROBEntry], None]] = []
        #: §7.2 PTE race: called when a faulted access finishes its
        #: walk.  Returning True means the OS won the race and set the
        #: present bit before the walker consumed the leaf entry — the
        #: access then completes normally instead of faulting.
        self.pte_race_hooks: List[Callable[[HardwareContext, ROBEntry], bool]] = []
        #: Called after decode resolves an entry's source operands.
        #: Receives ``(context, entry, sources)`` where ``sources`` has
        #: one element per operand slot: ``None`` (no source register),
        #: ``("arch", regname)`` (read from architectural state),
        #: ``("value", producer)`` (copied from a completed producer)
        #: or ``("pending", producer)`` (woken later by completion).
        #: The rename map is updated *after* the hook runs, so the
        #: producer identity is unrecoverable any later — same-register
        #: read/write instructions overwrite it.
        self.decode_hooks: List[Callable[
            [HardwareContext, ROBEntry, tuple], None]] = []
        #: Called when a non-squashed, non-faulted entry completes,
        #: just before its value is distributed to dependents.
        self.complete_hooks: List[Callable[[HardwareContext, ROBEntry], None]] = []
        #: Called on every squash with ``(context, squashed_entries,
        #: reason, trigger)``; ``reason`` is the same string the tracer
        #: and oracle see ("page-fault", "mispredict", "memory-order",
        #: "interrupt:<kind>", "txn-abort:<kind>") and ``trigger`` the
        #: entry that caused it (None for interrupts/aborts).  This is
        #: where squash-tracking defenses (Jamais Vu, Delay-on-Squash,
        #: SIMF, LEASH) learn about pipeline flushes.
        self.squash_hooks: List[Callable[
            [HardwareContext, List[ROBEntry], str,
             Optional[ROBEntry]], None]] = []
        #: Issue gates: predicates consulted before an entry may begin
        #: execution.  Any gate returning False keeps the entry in the
        #: ready queue for a later cycle (no port is consumed).  Zero
        #: cost when empty — the list is checked before iteration.
        self.issue_gates: List[Callable[
            [HardwareContext, ROBEntry], bool]] = []
        #: Optional leakage-oracle hub (repro.oracle) receiving squash
        #: notifications with the triggering entry; None when no oracle
        #: has ever been attached (the zero-cost default).
        self.oracle = None
        # Transaction aborts triggered by cache evictions land here.
        hierarchy.l1.add_evict_observer(self._on_l1_evict)

    # ------------------------------------------------------------------
    # per-cycle driver
    # ------------------------------------------------------------------

    def step(self):
        """Advance the core by one cycle."""
        self.ports.new_cycle()
        self._complete()
        self._process_txn_aborts()
        self._retire()
        self._dispatch()
        self._fetch()
        self.cycle += 1

    def busy(self) -> bool:
        """True while any context can still make progress."""
        return any(not ctx.finished() for ctx in self.contexts)

    # ------------------------------------------------------------------
    # quiescence fast-forward
    # ------------------------------------------------------------------

    def next_work_cycle(self) -> Optional[int]:
        """The next cycle at which any pipeline stage can act, assuming
        the core is quiescent right now.

        Returns ``None`` when some stage may act *this* cycle (or when
        nothing is ever going to happen again) — callers must then step
        normally.  Otherwise every cycle strictly before the returned
        one is provably an empty ``step()``: the only pending work sits
        in the event heap or behind a known stall/block cycle.
        """
        cycle = self.cycle
        deadlines = []
        if self._events:
            due = self._events[0][0]
            if due <= cycle:
                return None
            deadlines.append(due)
        for context in self.contexts:
            state = context.state
            if state is ContextState.BLOCKED:
                if context.blocked_until <= cycle:
                    return None
                deadlines.append(context.blocked_until)
                continue
            if state is not ContextState.RUNNING:
                continue  # IDLE/HALTED contexts never act again
            if (context.pending_interrupt is not None
                    or context.txn_abort_pending):
                return None
            head = context.rob.head
            if head is not None and head.completed:
                return None  # retire (or fault/trap) can act now
            for entry in context.ready:
                if not entry.squashed:
                    return None  # dispatch may issue this cycle
            # Fetch: possible at all, and if so, when?
            if (context.program is not None and not context.rob.full
                    and context.fetch_index < len(context.program)):
                stall = context.fetch_stall_until
                if stall <= cycle:
                    return None
                if stall != math.inf:
                    deadlines.append(stall)
        if not deadlines:
            return None
        target = min(deadlines)
        return target if target > cycle else None

    def fast_forward(self, limit: Optional[int] = None) -> int:
        """Jump the clock to the next cycle where work exists (clamped
        to *limit*).  Returns the number of empty cycles skipped.  The
        skipped cycles are exactly the no-op ``step()`` calls naive
        stepping would have performed, so all observable state —
        cycle counts, stats, architectural state — is bit-identical."""
        target = self.next_work_cycle()
        if target is None:
            return 0
        if limit is not None and target > limit:
            target = limit
        skipped = target - self.cycle
        if skipped <= 0:
            return 0
        self.cycle = target
        return skipped

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------

    def capture(self) -> tuple:
        """Clone every piece of core state that execution mutates.

        One clone memo spans the event heap and all contexts, so an
        in-flight entry referenced from several structures (ROB, rename
        map, ready queue, load index, heap — including squashed entries
        that live only in the heap) stays a single object in the
        snapshot.  Hooks, the tracer and the trap handler are identity
        wiring, not machine state, and are left untouched.
        """
        memo: dict = {}
        return (
            self.cycle,
            self._event_tiebreak,
            # Elementwise clone preserves the heap invariant: keys
            # (due cycle, tiebreak) are unchanged.
            [(due, tb, clone_entry(e, memo)) for due, tb, e in self._events],
            self._rdrand.getstate(),
            self._jitter.getstate(),
            self.predictor.capture(),
            self.ports.capture(),
            [context.capture(memo) for context in self.contexts],
        )

    def restore(self, state: tuple):
        (cycle, tiebreak, events, rdrand, jitter, predictor, ports,
         contexts) = state
        if len(contexts) != len(self.contexts):
            raise ValueError("snapshot context count mismatch")
        memo: dict = {}
        self.cycle = cycle
        self._event_tiebreak = tiebreak
        self._events = [(due, tb, clone_entry(e, memo))
                        for due, tb, e in events]
        self._rdrand.setstate(rdrand)
        self._jitter.setstate(jitter)
        self.predictor.restore(predictor)
        self.ports.restore(ports)
        for context, context_state in zip(self.contexts, contexts):
            context.restore(context_state, memo)

    # ------------------------------------------------------------------
    # stage 1: completion / writeback
    # ------------------------------------------------------------------

    def _note_squash(self, context: HardwareContext, squashed,
                     reason: str, trigger: Optional[ROBEntry] = None):
        context.note_squashed(squashed)
        if self.tracer is not None and squashed:
            self.tracer.on_squash(self.cycle, squashed, reason)
        if self.oracle is not None:
            self.oracle.on_squash(self.cycle, context, squashed, reason,
                                  trigger)
        for hook in self.squash_hooks:
            hook(context, squashed, reason, trigger)

    def _schedule(self, entry: ROBEntry, latency: int):
        entry.state = EntryState.EXECUTING
        entry.issue_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.on_issue(self.cycle, entry)
        self._event_tiebreak += 1
        heapq.heappush(self._events,
                       (self.cycle + max(latency, 1), self._event_tiebreak,
                        entry))

    def _complete(self):
        while self._events and self._events[0][0] <= self.cycle:
            _, _, entry = heapq.heappop(self._events)
            if entry.squashed:
                continue
            entry.state = EntryState.COMPLETED
            entry.complete_cycle = self.cycle
            if self.tracer is not None:
                self.tracer.on_complete(self.cycle, entry)
            if entry.mispredicted:
                self._handle_mispredict(entry)
            if entry.faulted and entry.instr.is_load \
                    and self.pte_race_hooks:
                self._try_pte_race(entry)
            if entry.faulted:
                continue  # no value; dependents stay asleep until squash
            for hook in self.complete_hooks:
                hook(self.contexts[entry.context_id], entry)
            for dependent, slot in entry.dependents:
                if dependent.squashed:
                    continue
                dependent.operands[slot] = entry.value
                dependent.pending -= 1
                if (dependent.pending == 0
                        and dependent.state is EntryState.DISPATCHED):
                    dependent.state = EntryState.READY
                    self.contexts[dependent.context_id].wake(dependent)
            entry.dependents.clear()

    def _try_pte_race(self, entry: ROBEntry):
        """Give a registered racer the chance to satisfy the walk the
        instant it finishes (the OS set the present bit just before the
        walker read the leaf entry — §7.2)."""
        context = self.contexts[entry.context_id]
        if not any(hook(context, entry) for hook in self.pte_race_hooks):
            return
        process = context.process
        try:
            paddr = process.page_tables.translate(entry.addr)
        except Exception:
            return  # racer claimed success but the page is still absent
        entry.fault = None
        entry.paddr = paddr
        self.hierarchy.access(paddr)
        entry.value = self._coerce_load_value(
            entry.instr, self.phys.read(paddr, entry.instr.width))

    def _handle_mispredict(self, entry: ROBEntry):
        context = self.contexts[entry.context_id]
        squashed = context.rob.squash_younger_than(entry.seq)
        self._note_squash(context, squashed, "mispredict", trigger=entry)
        context.drop_squashed_ready()
        context.rebuild_rename()
        target = entry.value  # branch "value" is the correct next index
        context.fetch_index = target
        context.fetch_stall_until = (
            self.cycle + self.config.mispredict_penalty)
        if self.config.fence_on_flush:
            context.serialize_next_fetch = True

    # ------------------------------------------------------------------
    # stage 2: transaction aborts
    # ------------------------------------------------------------------

    def _on_l1_evict(self, line_addr: int, dirty: bool):
        for context in self.contexts:
            txn = context.txn
            if txn is not None and line_addr in txn.write_lines:
                context.txn_abort_pending = "write-set-eviction"

    def _process_txn_aborts(self):
        for context in self.contexts:
            if context.txn_abort_pending and context.in_transaction:
                self._abort_transaction(context, context.txn_abort_pending)
            context.txn_abort_pending = None

    def _abort_transaction(self, context: HardwareContext, reason: str):
        """Roll back to the TBEGIN checkpoint and jump to the fallback."""
        txn = context.txn
        squashed = context.rob.squash_younger_than(-1)
        self._note_squash(context, squashed, f"txn-abort:{reason}")
        context.drop_squashed_ready()
        context.rebuild_rename()
        context.restore_regs((txn.int_regs, txn.fp_regs))
        context.txn = None
        context.stats.txn_aborts += 1
        # The fallback handler receives the abort count in r15, akin to
        # the EAX abort code of real TSX.
        context.int_regs["r15"] = context.stats.txn_aborts
        context.fetch_index = txn.fallback_index
        context.fetch_stall_until = self.cycle + self.config.squash_penalty
        context.last_txn_abort_reason = reason

    # ------------------------------------------------------------------
    # stage 3: retire
    # ------------------------------------------------------------------

    def _retire(self):
        for context in self.contexts:
            if context.state is ContextState.BLOCKED:
                if self.cycle >= context.blocked_until:
                    context.state = ContextState.RUNNING
                else:
                    continue
            if context.state is not ContextState.RUNNING:
                continue
            if context.pending_interrupt is not None:
                self._take_interrupt(context)
                continue
            for _ in range(self.config.retire_width):
                head = context.rob.head
                if head is None or not head.completed:
                    break
                if head.faulted:
                    self._fault_at_head(context, head)
                    break
                context.rob.pop_head()
                self._apply_retire(context, head)
                if context.state is not ContextState.RUNNING:
                    break

    def _apply_retire(self, context: HardwareContext, entry: ROBEntry):
        instr = entry.instr
        op = instr.op
        dest = instr.dest()
        if dest is not None and entry.value is not None:
            context.write_reg(dest, entry.value)
        if context.rename.get(dest) is entry:
            del context.rename[dest]
        if instr.is_store:
            self._drain_store(context, entry)
        elif op is Opcode.HALT:
            context.state = ContextState.HALTED
        elif op is Opcode.TBEGIN:
            self._begin_transaction(context, entry)
        elif op is Opcode.TEND:
            self._commit_transaction(context)
        elif op is Opcode.TABORT:
            # Abort immediately: a same-cycle TEND must not win.
            if context.in_transaction:
                self._abort_transaction(context, "explicit-abort")
        if entry.seq in context.fence_seqs:
            context.fence_seqs.remove(entry.seq)
        if instr.is_load and entry.addr is not None:
            context.unindex_load(entry)
        context.replay_candidates.discard(entry.index)
        context.stats.retired += 1
        if self.tracer is not None:
            self.tracer.on_retire(self.cycle, entry)
        for hook in self.retire_hooks:
            hook(context, entry)

    def _drain_store(self, context: HardwareContext, entry: ROBEntry):
        if context.in_transaction:
            txn = context.txn
            txn.write_buffer.append(
                (entry.addr, entry.paddr, entry.store_value,
                 entry.instr.width))
            txn.write_lines.add(line_of(entry.paddr))
            # Write-set lines must stay resident in L1.
            self.hierarchy.access(entry.paddr, is_write=True)
        else:
            self.hierarchy.access(entry.paddr, is_write=True)
            self.phys.write(entry.paddr, entry.store_value,
                            entry.instr.width)

    def _begin_transaction(self, context: HardwareContext,
                           entry: ROBEntry):
        ints, fps = context.snapshot_regs()
        fallback = context.program.target_index(entry.instr)
        context.txn = TransactionState(
            fallback_index=fallback, int_regs=ints, fp_regs=fps)

    def _commit_transaction(self, context: HardwareContext):
        txn = context.txn
        if txn is None:
            return  # tend outside a transaction: architectural no-op
        for _va, paddr, value, width in txn.write_buffer:
            self.phys.write(paddr, value, width)
        context.txn = None

    def _fault_at_head(self, context: HardwareContext, head: ROBEntry):
        if context.in_transaction:
            # Faults inside a transaction abort it; the OS never sees
            # the fault (the T-SGX premise, and its blind spot).
            self._abort_transaction(context, "page-fault")
            return
        fault = head.fault
        squashed = context.rob.squash_younger_than(-1)
        self._note_squash(context, squashed, "page-fault", trigger=head)
        context.drop_squashed_ready()
        context.rebuild_rename()
        context.stats.faults += 1
        action = self.trap_handler.handle_page_fault(context, fault)
        if action.halt:
            context.state = ContextState.HALTED
            return
        resume = (action.resume_index if action.resume_index is not None
                  else head.index)
        context.fetch_index = resume
        context.fetch_stall_until = 0
        context.state = ContextState.BLOCKED
        context.blocked_until = (
            self.cycle + action.cost + self.config.squash_penalty)
        if self.config.fence_on_flush:
            context.serialize_next_fetch = True

    def _take_interrupt(self, context: HardwareContext):
        reason = context.pending_interrupt
        context.pending_interrupt = None
        context.stats.interrupts += 1
        if context.in_transaction:
            # Interrupts abort transactions — indistinguishable from a
            # fault abort, which is exactly T-SGX's Section 8 problem.
            self._abort_transaction(context, "interrupt")
            return
        head = context.rob.head
        resume = head.index if head is not None else context.fetch_index
        squashed = context.rob.squash_younger_than(-1)
        self._note_squash(context, squashed, f"interrupt:{reason}")
        context.drop_squashed_ready()
        context.rebuild_rename()
        action = self.trap_handler.handle_interrupt(context, reason)
        if action.halt:
            context.state = ContextState.HALTED
            return
        context.fetch_index = (
            action.resume_index if action.resume_index is not None
            else resume)
        context.fetch_stall_until = 0
        context.state = ContextState.BLOCKED
        context.blocked_until = (
            self.cycle + action.cost + self.config.squash_penalty)

    # ------------------------------------------------------------------
    # stage 4: dispatch / execute
    # ------------------------------------------------------------------

    def _dispatch(self):
        budget = self.config.issue_width
        contexts = self.contexts
        order = list(range(len(contexts)))
        rotate = self.cycle % max(len(order), 1)
        order = order[rotate:] + order[:rotate]
        for context_id in order:
            if budget <= 0:
                break
            context = contexts[context_id]
            if not context.ready:
                continue
            still_ready = []
            for entry in context.sorted_ready():
                if entry.squashed:
                    continue
                if budget <= 0 or not self._try_execute(context, entry):
                    still_ready.append(entry)
                else:
                    budget -= 1
            context.ready = still_ready

    def _try_execute(self, context: HardwareContext,
                     entry: ROBEntry) -> bool:
        """Attempt to begin execution; return True when issued."""
        fence_seq = context.oldest_fence_seq()
        if fence_seq is not None:
            if entry.seq > fence_seq:
                return False  # serialised behind a fence
            if entry.seq == fence_seq and not \
                    context.rob.all_older_completed(entry.seq):
                return False
        if self.issue_gates and not all(
                gate(context, entry) for gate in self.issue_gates):
            return False  # held back by a defense mechanism
        op_cls = entry.op_cls
        if entry.instr.is_load:
            issued = self._execute_load(context, entry)
            if issued:
                context.stats.issued += 1
                context.index_inflight_load(entry)
                for hook in self.issue_hooks:
                    hook(context, entry)
            return issued
        latency = self._latency_for(entry)
        port = self.ports.try_issue(self.cycle, op_cls, latency)
        if port is None:
            return False
        entry.port_name = port.name
        if entry.instr.is_store:
            self._execute_store(context, entry, latency)
        else:
            self._execute_alu(context, entry, latency)
        context.stats.issued += 1
        for hook in self.issue_hooks:
            hook(context, entry)
        return True

    def _latency_for(self, entry: ROBEntry) -> int:
        cfg = self.config
        op = entry.instr.op
        if op is Opcode.FDIV:
            a, b = entry.operands
            result_sub = False
            try:
                result_sub = _is_subnormal(float(a) / float(b))
            except (ZeroDivisionError, TypeError, OverflowError):
                pass
            if (_is_subnormal(float(a or 0.0)) or _is_subnormal(float(b or 0.0))
                    or result_sub):
                return cfg.latency_of("fdiv_subnormal")
            return cfg.latency_of("fdiv")
        if op is Opcode.DIV:
            return cfg.latency_of("div")
        if op is Opcode.FMUL:
            return cfg.latency_of("fmul")
        if op is Opcode.MUL:
            return cfg.latency_of("mul")
        if op is Opcode.RDTSC:
            return cfg.latency_of("rdtsc")
        if op is Opcode.RDRAND:
            return cfg.latency_of("rdrand")
        if op in (Opcode.TBEGIN, Opcode.TEND, Opcode.TABORT):
            return cfg.latency_of("tsx")
        if op is Opcode.FENCE:
            return cfg.latency_of("fence")
        if entry.instr.is_store:
            return cfg.latency_of("store")
        return cfg.latency_of(entry.op_cls)

    # --- ALU / branch / misc execution -----------------------------------

    def _execute_alu(self, context: HardwareContext, entry: ROBEntry,
                     latency: int):
        instr = entry.instr
        op = instr.op
        a, b = entry.operands
        value = None
        if op is Opcode.LI or op is Opcode.FLI:
            value = instr.imm
        elif op in (Opcode.MOV, Opcode.FMOV):
            value = a
        elif op is Opcode.ADD:
            value = (a + b) & MASK64
        elif op is Opcode.SUB:
            value = (a - b) & MASK64
        elif op is Opcode.AND:
            value = a & b
        elif op is Opcode.OR:
            value = a | b
        elif op is Opcode.XOR:
            value = a ^ b
        elif op is Opcode.SHL:
            value = (a << (b & 63)) & MASK64
        elif op is Opcode.SHR:
            value = (a & MASK64) >> (b & 63)
        elif op is Opcode.ADDI:
            value = (a + instr.imm) & MASK64
        elif op is Opcode.SUBI:
            value = (a - instr.imm) & MASK64
        elif op is Opcode.ANDI:
            value = a & instr.imm
        elif op is Opcode.ORI:
            value = a | instr.imm
        elif op is Opcode.XORI:
            value = a ^ instr.imm
        elif op is Opcode.SHLI:
            value = (a << (instr.imm & 63)) & MASK64
        elif op is Opcode.SHRI:
            value = (a & MASK64) >> (instr.imm & 63)
        elif op is Opcode.MUL:
            value = (a * b) & MASK64
        elif op is Opcode.DIV:
            value = (a // b) & MASK64 if b else 0
        elif op is Opcode.FADD:
            value = a + b
        elif op is Opcode.FSUB:
            value = a - b
        elif op is Opcode.FMUL:
            value = a * b
        elif op is Opcode.FDIV:
            try:
                value = a / b
            except ZeroDivisionError:
                value = math.inf if a > 0 else -math.inf if a < 0 else 0.0
        elif instr.is_branch:
            self._execute_branch(context, entry)
        elif op is Opcode.RDTSC:
            value = self.cycle
            if self.config.rdtsc_jitter:
                value += self._jitter.randint(0, self.config.rdtsc_jitter)
        elif op is Opcode.RDRAND:
            value = self._rdrand.getrandbits(64)
        elif op in (Opcode.NOP, Opcode.HALT, Opcode.FENCE, Opcode.TBEGIN,
                    Opcode.TEND, Opcode.TABORT):
            value = None
        else:  # pragma: no cover - every opcode is handled above
            raise NotImplementedError(f"unhandled opcode {op}")
        if not instr.is_branch:
            entry.value = value
        self._schedule(entry, latency)

    def _execute_branch(self, context: HardwareContext, entry: ROBEntry):
        instr = entry.instr
        program = context.program
        if instr.op is Opcode.JMP:
            entry.actual_taken = True
            entry.value = program.target_index(instr)
            entry.mispredicted = False
            return
        a = _to_signed(entry.operands[0])
        b = _to_signed(entry.operands[1])
        if instr.op is Opcode.BEQ:
            taken = a == b
        elif instr.op is Opcode.BNE:
            taken = a != b
        elif instr.op is Opcode.BLT:
            taken = a < b
        else:  # BGE
            taken = a >= b
        entry.actual_taken = taken
        correct_next = (program.target_index(instr) if taken
                        else entry.index + 1)
        entry.value = correct_next
        entry.mispredicted = (entry.predicted_taken is not None
                              and entry.predicted_taken != taken)
        self.predictor.update(entry.index, taken, entry.mispredicted)

    # --- memory execution ---------------------------------------------------

    def _translate(self, context: HardwareContext, entry: ROBEntry,
                   va: int, is_write: bool) -> Tuple[Optional[int], int]:
        """TLB lookup, falling back to a hardware page walk.  Returns
        ``(paddr_or_None, latency)``; sets ``entry.fault`` on fault."""
        process = context.process
        if process is None:
            # Bare-metal mode (no kernel): identity-map addresses.
            return va, 1
        vpn = vaddr.vpn(va)
        tlb_entry, latency = self.tlbs.lookup(process.pcid, vpn)
        if tlb_entry is not None:
            return (tlb_entry.frame << vaddr.PAGE_SHIFT) | \
                vaddr.page_offset(va), latency
        walk = self.walker.walk(
            process.pcid, process.root_frame, va, is_write=is_write,
            pc=entry.index, context_id=context.context_id)
        latency += walk.latency
        entry.walk_latency = walk.latency
        if walk.faulted:
            entry.fault = walk.fault
            return None, latency
        self.tlbs.insert(process.pcid, vpn, walk.frame, walk.flags)
        return (walk.frame << vaddr.PAGE_SHIFT) | vaddr.page_offset(va), \
            latency

    def _execute_load(self, context: HardwareContext,
                      entry: ROBEntry) -> bool:
        instr = entry.instr
        va = (entry.operands[0] + instr.imm) & MASK64
        entry.addr = va
        # Store-buffer search: forward from the youngest older store
        # with a matching resolved address.  Stores with unresolved (or
        # faulted) addresses do NOT block the load — the LSU speculates
        # no-alias, and _check_memory_order_violation squashes the load
        # if the guess turns out wrong.  This optimism is what lets the
        # Fig. 6 victim's secret load run ahead of the faulting
        # counter-update store.
        forwarded = False
        forward_value = None
        for store in context.rob.stores_older_than(entry.seq):
            if store.addr_resolved and store.addr == va:
                if store.instr.width == instr.width:
                    forward_value = store.store_value
                    forwarded = True
                else:
                    return False  # partial overlap: retry after retire
        port = self.ports.try_issue(self.cycle, "load",
                                    self.config.latency_of("alu"))
        if port is None:
            return False
        entry.port_name = port.name
        if forwarded:
            entry.value = self._coerce_load_value(instr, forward_value)
            self._schedule(entry, self.config.latency_of("forward"))
            return True
        # Transaction write-buffer forwarding (committed, buffered).
        if context.in_transaction:
            for buf_va, _paddr, value, width in reversed(
                    context.txn.write_buffer):
                if buf_va == va and width == instr.width:
                    entry.value = self._coerce_load_value(instr, value)
                    self._schedule(entry,
                                   self.config.latency_of("forward"))
                    return True
        paddr, latency = self._translate(context, entry, va,
                                         is_write=False)
        if entry.fault is not None:
            self._schedule(entry, latency)
            return True
        entry.paddr = paddr
        latency += self.hierarchy.access(paddr)
        if context.in_transaction:
            context.txn.read_lines.add(line_of(paddr))
        value = self.phys.read(paddr, instr.width)
        entry.value = self._coerce_load_value(instr, value)
        self._schedule(entry, latency)
        return True

    @staticmethod
    def _coerce_load_value(instr: Instruction, value):
        if instr.op is Opcode.FLOAD:
            return float(value)
        if isinstance(value, float):
            return int(value) & MASK64
        return value & MASK64

    def _execute_store(self, context: HardwareContext, entry: ROBEntry,
                       latency: int):
        instr = entry.instr
        va = (entry.operands[0] + instr.imm) & MASK64
        entry.addr = va
        entry.store_value = entry.operands[1]
        paddr, translate_latency = self._translate(context, entry, va,
                                                   is_write=True)
        if entry.fault is None:
            entry.paddr = paddr
            entry.addr_resolved = True
            self._check_memory_order_violation(context, entry)
        self._schedule(entry, latency + translate_latency)

    def _check_memory_order_violation(self, context: HardwareContext,
                                      store: ROBEntry):
        """A younger load already executed against the address this
        store just resolved: the no-alias speculation was wrong.
        Squash from the *oldest* violating load and refetch.

        The in-flight load index holds exactly the issued-but-unretired
        loads (retire and squash unindex them), so this lookup touches
        only same-address loads instead of walking the whole ROB.  The
        bucket is insertion (issue) ordered, which out-of-order issue
        can leave unordered by seq — hence the explicit min."""
        violating = None
        for candidate in context.inflight_loads.get(store.addr, ()):
            if (candidate.seq > store.seq and not candidate.squashed
                    and candidate.state in (EntryState.EXECUTING,
                                            EntryState.COMPLETED)
                    and (violating is None
                         or candidate.seq < violating.seq)):
                violating = candidate
        if violating is None:
            return
        squashed = context.rob.squash_younger_than(violating.seq - 1)
        self._note_squash(context, squashed, "memory-order",
                          trigger=store)
        context.drop_squashed_ready()
        context.rebuild_rename()
        context.fetch_index = violating.index
        context.fetch_stall_until = self.cycle + self.config.squash_penalty
        if self.config.fence_on_flush:
            context.serialize_next_fetch = True

    # ------------------------------------------------------------------
    # stage 5: fetch / decode
    # ------------------------------------------------------------------

    def _fetch(self):
        budget = self.config.fetch_width
        contexts = self.contexts
        cycle = self.cycle
        order = list(range(len(contexts)))
        rotate = (cycle + 1) % max(len(order), 1)
        order = order[rotate:] + order[:rotate]
        for context_id in order:
            if budget <= 0:
                break
            context = contexts[context_id]
            if context.state is not ContextState.RUNNING:
                continue
            if cycle < context.fetch_stall_until:
                continue
            while (budget > 0 and not context.rob.full
                   and context.program is not None
                   and context.fetch_index < len(context.program)):
                stop = self._decode_one(context)
                budget -= 1
                if stop:
                    break

    def _decode_one(self, context: HardwareContext) -> bool:
        """Decode one instruction into the ROB.  Returns True when the
        front end should stop fetching this context this cycle."""
        program = context.program
        index = context.fetch_index
        instr = program[index]
        entry = ROBEntry(context.next_seq(), context.context_id, index,
                         instr, op_class(instr))
        if index in context.replay_candidates:
            entry.is_replay = True
            context.stats.replays += 1
        context.stats.fetched += 1
        if self.tracer is not None:
            self.tracer.on_fetch(self.cycle, entry)
        # Resolve source operands against the rename map / arch state.
        sources = [None, None] if self.decode_hooks else None
        for slot, src in enumerate((instr.rs1, instr.rs2)):
            if src is None:
                continue
            producer = context.rename.get(src)
            if producer is None:
                entry.operands[slot] = context.read_reg(src)
                if sources is not None:
                    sources[slot] = ("arch", src)
            elif producer.completed and not producer.faulted:
                entry.operands[slot] = producer.value
                if sources is not None:
                    sources[slot] = ("value", producer)
            else:
                # In-flight (or faulted: never wakes) producer.
                producer.dependents.append((entry, slot))
                entry.pending += 1
                if sources is not None:
                    sources[slot] = ("pending", producer)
        if sources is not None:
            src_tuple = tuple(sources)
            for hook in self.decode_hooks:
                hook(context, entry, src_tuple)
        dest = instr.dest()
        if dest is not None:
            context.rename[dest] = entry
        # Control flow steering.
        stop = False
        if instr.op is Opcode.JMP:
            context.fetch_index = program.target_index(instr)
        elif instr.is_cond_branch:
            predicted = self.predictor.predict(index)
            entry.predicted_taken = predicted
            context.fetch_index = (program.target_index(instr) if predicted
                                   else index + 1)
        elif instr.op is Opcode.HALT:
            context.fetch_index = index + 1
            # Stop fetching past the HALT; a squash/redirect resets the
            # stall if the HALT turns out to be on a wrong path.
            context.fetch_stall_until = float("inf")
            stop = True
        else:
            context.fetch_index = index + 1
        # Serialisation: fences, fenced RDRAND, and the fence-on-flush
        # defense all gate younger execution until this entry retires.
        serialize = instr.op is Opcode.FENCE
        if instr.op is Opcode.RDRAND and self.config.rdrand_fenced:
            serialize = True
        if context.serialize_next_fetch:
            serialize = True
            context.serialize_next_fetch = False
        if serialize:
            context.fence_seqs.append(entry.seq)
        context.rob.push(entry)
        if entry.pending == 0:
            entry.state = EntryState.READY
            context.wake(entry)
        return stop
