"""Core configuration: widths, latencies and execution-port layout.

Defaults are loosely modelled on the paper's Intel Xeon E5-1630 v3
(Haswell): a 4-wide front end, a ~100-entry reorder buffer per SMT
context, one non-pipelined divider on port 0, and multipliers on
port 1.  The exact numbers matter less than the structural facts the
attack relies on: in-order retirement, speculative execution during
page walks, and a divider that is a shared, serially-occupied resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Tuple

from repro.isa.instructions import Instruction, Opcode

#: Operation classes used for port binding and latency lookup.
OP_CLASSES = ("alu", "mul", "div", "fpalu", "load", "store", "branch")


def op_class(instr: Instruction) -> str:
    """Map an instruction to its execution-port class."""
    op = instr.op
    if op in (Opcode.LOAD, Opcode.FLOAD):
        return "load"
    if op in (Opcode.STORE, Opcode.FSTORE):
        return "store"
    if op in (Opcode.MUL, Opcode.FMUL):
        return "mul"
    if op in (Opcode.DIV, Opcode.FDIV):
        return "div"
    if op in (Opcode.FADD, Opcode.FSUB):
        return "fpalu"
    if instr.is_branch:
        return "branch"
    return "alu"


@dataclass(frozen=True)
class PortConfig:
    """One execution port and the operation classes it accepts."""

    name: str
    classes: FrozenSet[str]


def default_ports() -> Tuple[PortConfig, ...]:
    """Skylake/Haswell-flavoured port layout.

    The single divider lives on port 0 and is non-pipelined; integer
    and FP multiplies go to port 1.  This is the structural hazard the
    PortSmash-style attack of Section 4.3 observes.
    """
    return (
        PortConfig("p0", frozenset({"alu", "div"})),
        PortConfig("p1", frozenset({"alu", "mul", "fpalu"})),
        PortConfig("p5", frozenset({"alu", "fpalu"})),
        PortConfig("p6", frozenset({"alu", "branch"})),
        PortConfig("p2", frozenset({"load"})),
        PortConfig("p3", frozenset({"load"})),
        PortConfig("p4", frozenset({"store"})),
    )


def default_latencies() -> Dict[str, int]:
    """Execution latencies (cycles) keyed by opcode class or special
    opcode name."""
    return {
        "alu": 1,
        "mul": 3,
        "fmul": 4,
        "div": 18,
        "fdiv": 24,
        # Latency of an FP divide with a subnormal operand or result —
        # the timing difference of Andrysco et al. that §4.2.1 detects.
        "fdiv_subnormal": 140,
        "fpalu": 3,
        "branch": 1,
        "store": 1,
        "rdtsc": 12,
        "rdrand": 150,
        "fence": 1,
        "tsx": 2,
        "nop": 1,
        # Store-to-load forwarding latency.
        "forward": 5,
    }


@dataclass(frozen=True)
class DefenseHookConfig:
    """A hardware defense mechanism installed through the core's hook
    layer (``squash_hooks`` / ``issue_gates`` / ``retire_hooks``).

    ``scheme`` names a mechanism registered in
    :mod:`repro.evaluation.defenses.mechanisms` (e.g.
    ``"jamais-vu"``, ``"delay-on-squash"``, ``"simf"``, ``"leash"``);
    ``params`` carries its knobs verbatim to the mechanism factory.
    The config lives here (not in the evaluation package) because it
    is part of :class:`~repro.config.MachineConfig` — the machine
    resolves and installs the mechanism at construction time.
    """

    scheme: str = ""
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CoreConfig:
    """All tunables of one physical core."""

    fetch_width: int = 4
    issue_width: int = 6
    retire_width: int = 4
    #: ROB entries available to each SMT context.
    rob_size: int = 96
    num_contexts: int = 2
    ports: Tuple[PortConfig, ...] = field(default_factory=default_ports)
    latencies: Dict[str, int] = field(default_factory=default_latencies)
    #: Which op classes occupy their port for the full latency.
    non_pipelined: FrozenSet[str] = frozenset({"div"})
    mispredict_penalty: int = 12
    #: Front-end refill penalty after a squash caused by a fault/abort.
    squash_penalty: int = 16
    #: Defense of Section 8: insert an implicit fence after every
    #: pipeline flush, so replayed code cannot run ahead speculatively.
    fence_on_flush: bool = False
    #: Model Intel's RDRAND serialisation (§7.2): when True, RDRAND
    #: blocks younger instructions until it retires, defeating the
    #: integrity attack.
    rdrand_fenced: bool = True
    #: Deterministic seed for the RDRAND value stream.
    rdrand_seed: int = 0xC0FFEE
    #: Optional uniform jitter (+/- cycles) added to RDTSC readings,
    #: modelling measurement noise.  0 disables it.
    rdtsc_jitter: int = 0
    rdtsc_jitter_seed: int = 7
    #: Branch predictor table size (entries of 2-bit counters).
    predictor_entries: int = 512
    #: Quiescence fast-forward: when no context can fetch, dispatch,
    #: retire or complete anything this cycle (everything in flight is
    #: waiting on a known future cycle), jump the clock straight to the
    #: next deadline instead of stepping empty cycles.  Bit-exact with
    #: naive stepping (tests/cpu/test_fast_forward.py proves it); off
    #: by default so cycle-by-cycle experiments keep their granularity.
    fast_forward: bool = False

    def latency_of(self, key: str) -> int:
        try:
            return self.latencies[key]
        except KeyError:
            raise KeyError(f"no latency configured for {key!r}") from None
