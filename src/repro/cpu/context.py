"""Hardware (SMT) contexts.

A :class:`HardwareContext` is one logical processor: architectural
register state, a fetch pointer, a private reorder buffer and rename
map, plus TSX transaction state.  Two contexts share one physical
core's ports and memory structures — that sharing is what the Monitor
exploits to observe the Victim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.isa import registers
from repro.isa.program import Program
from repro.cpu.rob import ReorderBuffer, ROBEntry, clone_entry
from repro.observability.stats import ContextStats

__all__ = ["ContextState", "ContextStats", "HardwareContext",
           "TransactionState"]


class ContextState(enum.Enum):
    IDLE = "idle"          # no program loaded
    RUNNING = "running"
    BLOCKED = "blocked"    # trapped to the kernel; resumes at a cycle
    HALTED = "halted"      # retired a HALT or ran past program end


@dataclass
class TransactionState:
    """State of an in-progress TSX transaction (committed TBEGIN)."""

    fallback_index: int
    int_regs: Dict[str, int]
    fp_regs: Dict[str, float]
    #: Buffered (paddr, value, width) writes, drained on commit.
    write_buffer: List[Tuple[int, object, int]] = field(default_factory=list)
    #: Cache lines in the write set; eviction of any aborts (§7.1).
    write_lines: Set[int] = field(default_factory=set)
    #: Cache lines in the read set.
    read_lines: Set[int] = field(default_factory=set)


class HardwareContext:
    """One SMT logical processor."""

    def __init__(self, context_id: int, rob_size: int):
        self.context_id = context_id
        self.int_regs = registers.fresh_int_regfile()
        self.fp_regs = registers.fresh_fp_regfile()
        self.rob = ReorderBuffer(rob_size)
        #: Youngest in-flight producer per register.
        self.rename: Dict[str, ROBEntry] = {}
        #: Entries with operands ready, waiting for a port.  Kept in
        #: program (seq) order via :meth:`wake`; ``_ready_dirty`` marks
        #: an out-of-order wakeup so dispatch re-sorts only when needed.
        self.ready: List[ROBEntry] = []
        self._ready_dirty = False
        #: Executed-but-not-retired loads indexed by virtual address,
        #: for O(1) memory-order-violation checks at store resolution.
        self.inflight_loads: Dict[int, List[ROBEntry]] = {}
        self.state = ContextState.IDLE
        self.program: Optional[Program] = None
        self.process = None  # set by the kernel when scheduling
        self.fetch_index = 0
        #: Front end stalled until this cycle (mispredict/squash refill).
        self.fetch_stall_until = 0
        #: Context blocked (kernel trap) until this cycle.
        self.blocked_until = 0
        #: Sequence numbers of in-flight FENCEs (and fenced RDRANDs):
        #: younger entries may not begin execution.
        self.fence_seqs: List[int] = []
        #: Dynamic-instance replay detection: indices squashed at least
        #: once since their last retirement.
        self.replay_candidates: Set[int] = set()
        self.txn: Optional[TransactionState] = None
        self.txn_abort_pending: Optional[str] = None
        self.last_txn_abort_reason: Optional[str] = None
        self.pending_interrupt: Optional[str] = None
        #: Set by the fence-on-flush defense: the next decoded
        #: instruction behaves as if preceded by a fence.
        self.serialize_next_fetch = False
        self.stats = ContextStats()
        self._next_seq = 0

    # --- lifecycle ---------------------------------------------------------

    def load_program(self, program: Program, process=None,
                     start_index: int = 0):
        """Bind *program* (and optionally a process) and start running."""
        self.program = program
        self.process = process
        self.fetch_index = start_index
        self.state = ContextState.RUNNING
        self.fetch_stall_until = 0
        self.blocked_until = 0
        self.rename.clear()
        self.ready.clear()
        self._ready_dirty = False
        self.inflight_loads.clear()
        self.fence_seqs.clear()
        self.replay_candidates.clear()
        self.txn = None
        self.txn_abort_pending = None
        self.rob.squash_younger_than(-1)

    def next_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    @property
    def running(self) -> bool:
        return self.state is ContextState.RUNNING

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None

    def finished(self) -> bool:
        """True when the context will never retire anything again."""
        if self.state is ContextState.HALTED:
            return True
        if self.state is ContextState.IDLE:
            return True
        if (self.state is ContextState.RUNNING and self.rob.empty
                and self.program is not None
                and self.fetch_index >= len(self.program)):
            return True
        return False

    # --- register access ---------------------------------------------------

    def read_reg(self, name: str):
        if name in self.int_regs:
            return self.int_regs[name]
        return self.fp_regs[name]

    def write_reg(self, name: str, value):
        if name in self.int_regs:
            self.int_regs[name] = int(value)
        else:
            self.fp_regs[name] = float(value)

    def snapshot_regs(self) -> Tuple[Dict[str, int], Dict[str, float]]:
        return dict(self.int_regs), dict(self.fp_regs)

    def restore_regs(self, snapshot: Tuple[Dict[str, int],
                                           Dict[str, float]]):
        self.int_regs, self.fp_regs = dict(snapshot[0]), dict(snapshot[1])

    # --- scheduling support --------------------------------------------------

    def wake(self, entry: ROBEntry):
        """Add *entry* to the ready queue, tracking ordering: fetch-time
        wakeups arrive in seq order, completion-time wakeups may not."""
        ready = self.ready
        if ready and ready[-1].seq > entry.seq:
            self._ready_dirty = True
        ready.append(entry)

    def sorted_ready(self) -> List[ROBEntry]:
        """The ready queue in program (seq) order, re-sorting only when
        an out-of-order wakeup dirtied it."""
        if self._ready_dirty:
            self.ready.sort(key=lambda e: e.seq)
            self._ready_dirty = False
        return self.ready

    def index_inflight_load(self, entry: ROBEntry):
        """Record an issued load for memory-order checks (keyed by VA)."""
        self.inflight_loads.setdefault(entry.addr, []).append(entry)

    def unindex_load(self, entry: ROBEntry):
        """Drop a retired load from the in-flight index."""
        bucket = self.inflight_loads.get(entry.addr)
        if bucket is None:
            return
        try:
            bucket.remove(entry)
        except ValueError:
            return
        if not bucket:
            del self.inflight_loads[entry.addr]

    # --- squash support ------------------------------------------------------

    def rebuild_rename(self):
        """Recompute the rename map from surviving ROB entries after a
        squash (youngest producer wins)."""
        self.rename.clear()
        for entry in self.rob.entries:
            dest = entry.instr.dest()
            if dest is not None:
                self.rename[dest] = entry

    def drop_squashed_ready(self):
        self.ready = [e for e in self.ready if not e.squashed]

    def note_squashed(self, entries):
        """Track squashed dynamic instructions for replay accounting and
        clean fence bookkeeping."""
        if not entries:
            return
        self.stats.squashed += len(entries)
        self.stats.squash_events += 1
        squashed_seqs = {e.seq for e in entries}
        self.fence_seqs = [s for s in self.fence_seqs
                           if s not in squashed_seqs]
        for entry in entries:
            self.replay_candidates.add(entry.index)
            if entry.instr.is_load and entry.addr is not None:
                self.unindex_load(entry)

    def oldest_fence_seq(self) -> Optional[int]:
        return min(self.fence_seqs) if self.fence_seqs else None

    # --- snapshot support ----------------------------------------------------

    def _capture_txn(self) -> Optional[tuple]:
        txn = self.txn
        if txn is None:
            return None
        return (txn.fallback_index, dict(txn.int_regs), dict(txn.fp_regs),
                list(txn.write_buffer), set(txn.write_lines),
                set(txn.read_lines))

    def capture(self, memo: dict) -> tuple:
        """Clone all mutable state.  *memo* is the core-wide ROB-entry
        clone memo; sharing it preserves entry aliasing between the
        ROB, rename map, ready queue, load index and the event heap.
        ``program`` and ``process`` are shared by reference (programs
        are immutable; process state is captured by the kernel)."""
        return (
            dict(self.int_regs), dict(self.fp_regs),
            self.rob.capture(memo),
            {reg: clone_entry(e, memo) for reg, e in self.rename.items()},
            [clone_entry(e, memo) for e in self.ready],
            self._ready_dirty,
            {addr: [clone_entry(e, memo) for e in bucket]
             for addr, bucket in self.inflight_loads.items()},
            self.state, self.program, self.process,
            self.fetch_index, self.fetch_stall_until, self.blocked_until,
            list(self.fence_seqs), set(self.replay_candidates),
            self._capture_txn(),
            self.txn_abort_pending, self.last_txn_abort_reason,
            self.pending_interrupt, self.serialize_next_fetch,
            self.stats.capture(),
            self._next_seq,
        )

    def restore(self, state: tuple, memo: dict):
        (int_regs, fp_regs, rob, rename, ready, ready_dirty, inflight,
         ctx_state, program, process, fetch_index, fetch_stall_until,
         blocked_until, fence_seqs, replay_candidates, txn,
         txn_abort_pending, last_txn_abort_reason, pending_interrupt,
         serialize_next_fetch, stats, next_seq) = state
        self.int_regs = dict(int_regs)
        self.fp_regs = dict(fp_regs)
        self.rob.restore(rob, memo)
        self.rename = {reg: clone_entry(e, memo)
                       for reg, e in rename.items()}
        self.ready = [clone_entry(e, memo) for e in ready]
        self._ready_dirty = ready_dirty
        self.inflight_loads = {
            addr: [clone_entry(e, memo) for e in bucket]
            for addr, bucket in inflight.items()}
        self.state = ctx_state
        self.program = program
        self.process = process
        self.fetch_index = fetch_index
        self.fetch_stall_until = fetch_stall_until
        self.blocked_until = blocked_until
        self.fence_seqs = list(fence_seqs)
        self.replay_candidates = set(replay_candidates)
        if txn is None:
            self.txn = None
        else:
            (fallback, txn_ints, txn_fps, write_buffer, write_lines,
             read_lines) = txn
            self.txn = TransactionState(
                fallback_index=fallback, int_regs=dict(txn_ints),
                fp_regs=dict(txn_fps), write_buffer=list(write_buffer),
                write_lines=set(write_lines), read_lines=set(read_lines))
        self.txn_abort_pending = txn_abort_pending
        self.last_txn_abort_reason = last_txn_abort_reason
        self.pending_interrupt = pending_interrupt
        self.serialize_next_fetch = serialize_next_fetch
        self.stats.restore(stats)
        self._next_seq = next_seq
