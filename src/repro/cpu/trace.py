"""Pipeline tracing: per-instruction lifecycle capture and rendering.

Attach a :class:`PipelineTracer` to a core and every dynamic
instruction's journey — fetch, issue, complete, retire or squash — is
recorded with cycle timestamps.  :func:`render_pipeline` draws the
classic pipeline-viewer text diagram::

    seq ctx  instruction              F---I===C     R
    ...

which makes replay attacks *visible*: the victim's transmit
instructions appear, execute, and die squashed, replay after replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cpu.rob import ROBEntry


@dataclass
class InstructionTrace:
    """Lifecycle of one dynamic instruction."""

    seq: int
    context_id: int
    index: int
    text: str
    fetch_cycle: int
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    retire_cycle: Optional[int] = None
    squash_cycle: Optional[int] = None
    squash_reason: Optional[str] = None
    faulted: bool = False

    @property
    def squashed(self) -> bool:
        return self.squash_cycle is not None

    @property
    def end_cycle(self) -> int:
        for value in (self.retire_cycle, self.squash_cycle,
                      self.complete_cycle, self.issue_cycle):
            if value is not None:
                return value
        return self.fetch_cycle


class PipelineTracer:
    """Records instruction lifecycles from a core's notifications."""

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self.records: List[InstructionTrace] = []
        self._live: Dict[int, InstructionTrace] = {}

    def _key(self, entry: ROBEntry) -> int:
        return (entry.context_id << 48) | entry.seq

    # --- notifications from the core -------------------------------------

    def on_fetch(self, cycle: int, entry: ROBEntry):
        if len(self.records) >= self.capacity:
            return
        record = InstructionTrace(
            seq=entry.seq, context_id=entry.context_id,
            index=entry.index, text=str(entry.instr),
            fetch_cycle=cycle)
        self.records.append(record)
        self._live[self._key(entry)] = record

    def _get(self, entry: ROBEntry) -> Optional[InstructionTrace]:
        return self._live.get(self._key(entry))

    def on_issue(self, cycle: int, entry: ROBEntry):
        record = self._get(entry)
        if record is not None:
            record.issue_cycle = cycle

    def on_complete(self, cycle: int, entry: ROBEntry):
        record = self._get(entry)
        if record is not None:
            record.complete_cycle = cycle
            record.faulted = entry.faulted

    def on_retire(self, cycle: int, entry: ROBEntry):
        record = self._live.pop(self._key(entry), None)
        if record is not None:
            record.retire_cycle = cycle

    def on_squash(self, cycle: int, entries: Sequence[ROBEntry],
                  reason: str):
        for entry in entries:
            record = self._live.pop(self._key(entry), None)
            if record is not None:
                record.squash_cycle = cycle
                record.squash_reason = reason

    # --- queries -----------------------------------------------------------

    def for_context(self, context_id: int) -> List[InstructionTrace]:
        return [r for r in self.records if r.context_id == context_id]

    def squashed(self) -> List[InstructionTrace]:
        return [r for r in self.records if r.squashed]

    def replays_of(self, index: int,
                   context_id: int = 0) -> List[InstructionTrace]:
        """All dynamic instances of static instruction *index* — the
        replay trail."""
        return [r for r in self.records
                if r.context_id == context_id and r.index == index]


def render_pipeline(records: Sequence[InstructionTrace],
                    start_cycle: Optional[int] = None,
                    end_cycle: Optional[int] = None,
                    max_width: int = 100) -> str:
    """Draw records as a text pipeline diagram.

    Stage marks: ``F`` fetch, ``I`` issue, ``C`` complete, ``R``
    retire, ``X`` squash; ``-`` waiting in the ROB, ``=`` executing.
    """
    records = [r for r in records]
    if not records:
        return "(no instructions traced)"
    lo = start_cycle if start_cycle is not None else min(
        r.fetch_cycle for r in records)
    hi = end_cycle if end_cycle is not None else max(
        r.end_cycle for r in records)
    hi = max(hi, lo)
    scale = max(1, (hi - lo + 1 + max_width - 1) // max_width)

    def column(cycle: int) -> int:
        return (cycle - lo) // scale

    width = column(hi) + 1
    lines = [f"cycles {lo}..{hi}"
             + (f" (1 column = {scale} cycles)" if scale > 1 else "")]
    for record in records:
        if record.end_cycle < lo or record.fetch_cycle > hi:
            continue
        row = [" "] * width
        start = column(max(record.fetch_cycle, lo))
        end = column(min(record.end_cycle, hi))
        for i in range(start, end + 1):
            row[i] = "-"
        if record.issue_cycle is not None \
                and lo <= record.issue_cycle <= hi:
            for i in range(column(record.issue_cycle), end + 1):
                row[i] = "="
        row[start] = "F"
        if record.issue_cycle is not None \
                and lo <= record.issue_cycle <= hi:
            row[column(record.issue_cycle)] = "I"
        if record.complete_cycle is not None \
                and lo <= record.complete_cycle <= hi:
            row[column(record.complete_cycle)] = "C"
        if record.retire_cycle is not None \
                and lo <= record.retire_cycle <= hi:
            row[column(record.retire_cycle)] = "R"
        if record.squash_cycle is not None \
                and lo <= record.squash_cycle <= hi:
            row[column(record.squash_cycle)] = "X"
        label = (f"c{record.context_id} #{record.index:<3} "
                 f"{record.text[:28]:<28}")
        lines.append(f"{label} |{''.join(row)}|")
    return "\n".join(lines)
