"""Execution ports and port arbitration.

Ports are the *shared* structural resource of an SMT core: both
hardware contexts dispatch into the same set, so a victim's divides
delay a monitor's divides.  The divider (op class ``div``) is
non-pipelined — it occupies its port for the instruction's full
latency — which makes the contention signal of Section 4.3 large and
reliable once MicroScope removes the alignment noise.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cpu.config import PortConfig
from repro.observability.stats import PortStats

__all__ = ["Port", "PortSet", "PortStats"]


class Port:
    """One execution port."""

    __slots__ = ("name", "classes", "_non_pipelined", "busy_until",
                 "_issued_this_cycle", "stats")

    def __init__(self, config: PortConfig, non_pipelined: FrozenSet[str]):
        self.name = config.name
        self.classes = config.classes
        self._non_pipelined = non_pipelined
        #: Cycle until which a non-pipelined op holds the port.
        self.busy_until = 0
        #: Whether an op was issued here this cycle (1 issue/port/cycle).
        self._issued_this_cycle = False
        self.stats = PortStats()

    def accepts(self, op_cls: str) -> bool:
        return op_cls in self.classes

    def available(self, now: int, op_cls: str) -> bool:
        """Can *op_cls* issue here at cycle *now*?"""
        if not self.accepts(op_cls):
            return False
        if self._issued_this_cycle:
            return False
        if now < self.busy_until:
            self.stats.contended += 1
            return False
        return True

    def issue(self, now: int, op_cls: str, latency: int):
        """Commit an issue; non-pipelined classes hold the port."""
        self._issued_this_cycle = True
        self.stats.issued += 1
        if op_cls in self._non_pipelined:
            self.busy_until = now + latency

    def new_cycle(self):
        self._issued_this_cycle = False

    def capture(self) -> tuple:
        return (self.busy_until, self._issued_this_cycle,
                self.stats.capture())

    def restore(self, state: tuple):
        (self.busy_until, self._issued_this_cycle, stats) = state
        self.stats.restore(stats)


class PortSet:
    """All ports of one core, with simple oldest-first arbitration."""

    def __init__(self, configs: Sequence[PortConfig],
                 non_pipelined: FrozenSet[str]):
        #: Op classes that occupy their port for the full latency —
        #: the observable contention resource (oracle hook point).
        self.non_pipelined = non_pipelined
        self.ports: List[Port] = [Port(c, non_pipelined) for c in configs]
        self._by_class: Dict[str, List[Port]] = {}
        for port in self.ports:
            for cls in port.classes:
                self._by_class.setdefault(cls, []).append(port)

    def new_cycle(self):
        for port in self.ports:
            port.new_cycle()

    def try_issue(self, now: int, op_cls: str, latency: int
                  ) -> Optional[Port]:
        """Issue an op of *op_cls* on the first available port, or
        return ``None`` when every candidate port is busy."""
        for port in self._by_class.get(op_cls, ()):
            if port.available(now, op_cls):
                port.issue(now, op_cls, latency)
                return port
        return None

    def is_non_pipelined(self, op_cls: str) -> bool:
        """True when *op_cls* holds its port for the full latency (a
        sibling context observes the occupancy as contention)."""
        return op_cls in self.non_pipelined

    def port_named(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"no port named {name!r}")

    def contention_report(self) -> Dict[str, Tuple[int, int]]:
        """``{port: (issued, contended_cycles)}`` for diagnostics."""
        return {p.name: (p.stats.issued, p.stats.contended)
                for p in self.ports}

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        return tuple(port.capture() for port in self.ports)

    def restore(self, state: tuple):
        if len(state) != len(self.ports):
            raise ValueError("snapshot port count mismatch")
        for port, port_state in zip(self.ports, state):
            port.restore(port_state)
