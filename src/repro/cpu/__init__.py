"""CPU substrate: the out-of-order SMT core and the machine wrapper."""

from repro.cpu.branch import BranchPredictor
from repro.cpu.config import CoreConfig, PortConfig, default_latencies, default_ports, op_class
from repro.cpu.context import ContextState, ContextStats, HardwareContext
from repro.cpu.core import Core
from repro.cpu.machine import Machine, MachineConfig
from repro.cpu.ports import Port, PortSet
from repro.cpu.rob import EntryState, ReorderBuffer, ROBEntry
from repro.cpu.traps import PanicTrapHandler, TrapAction, TrapHandler

__all__ = [
    "BranchPredictor",
    "CoreConfig",
    "PortConfig",
    "default_latencies",
    "default_ports",
    "op_class",
    "ContextState",
    "ContextStats",
    "HardwareContext",
    "Core",
    "Machine",
    "MachineConfig",
    "Port",
    "PortSet",
    "EntryState",
    "ReorderBuffer",
    "ROBEntry",
    "PanicTrapHandler",
    "TrapAction",
    "TrapHandler",
]
