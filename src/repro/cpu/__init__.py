"""CPU substrate: the out-of-order SMT core and the machine wrapper."""

from repro.cpu.branch import BranchPredictor
from repro.cpu.config import CoreConfig, PortConfig, default_latencies, default_ports, op_class
from repro.cpu.context import ContextState, ContextStats, HardwareContext
from repro.cpu.core import Core
from repro.cpu.machine import Machine
from repro.cpu.ports import Port, PortSet
from repro.cpu.rob import EntryState, ReorderBuffer, ROBEntry
from repro.cpu.traps import PanicTrapHandler, TrapAction, TrapHandler


def __getattr__(name: str):
    # MachineConfig moved to repro.config (PEP 562 shim, see
    # repro.cpu.machine for the matching warning).
    if name == "MachineConfig":
        import warnings

        warnings.warn(
            "importing MachineConfig from repro.cpu is deprecated; "
            "import it from repro.config (or repro)",
            DeprecationWarning, stacklevel=2)
        from repro.config import MachineConfig
        return MachineConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BranchPredictor",
    "CoreConfig",
    "PortConfig",
    "default_latencies",
    "default_ports",
    "op_class",
    "ContextState",
    "ContextStats",
    "HardwareContext",
    "Core",
    "Machine",
    "MachineConfig",
    "Port",
    "PortSet",
    "EntryState",
    "ReorderBuffer",
    "ROBEntry",
    "PanicTrapHandler",
    "TrapAction",
    "TrapHandler",
]
