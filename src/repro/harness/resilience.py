"""Fault-tolerant sweep execution: watchdog, retries, degradation.

:func:`repro.harness.run_sweep` assumes every trial succeeds: one
crashed or hung worker process loses the whole sweep.  At experiment
volume that assumption fails routinely — OOM kills, wedged simulations,
flaky serialisation — so this layer wraps the sweep contract in a
supervisor that *expects* trials to misbehave:

* **watchdog timeouts** — each attempt runs in its own worker process
  with a deadline; the supervisor kills and reaps workers that blow
  it, reclaiming the slot immediately;
* **bounded retries with fresh seed lineage** — attempt *k* of trial
  *i* reruns with ``derive_seed(master, i, label, attempt=k)``
  (attempt 0 is bit-identical to the historical seed), plus
  exponential backoff between attempts.  Because both the retry seed
  and the retry *decision* depend only on ``(master_seed, label,
  index, attempt)`` and the observed failures, merged results are
  invariant to worker count and to *when* failures land in wall-clock
  time;
* **result integrity** — workers ship their result with a SHA-256 of
  the pickled payload; a digest mismatch (or an
  optional semantic ``FaultPolicy.verify`` hook returning False)
  counts as a failed attempt and retries like any other fault;
* **graceful degradation** — when a trial exhausts its attempts,
  ``on_exhausted`` picks between ``'raise'`` (abort the sweep),
  ``'skip'`` (drop the trial from merged results) and ``'default'``
  (substitute ``FaultPolicy.default``);
* **checkpointing** — with ``journal=path`` every completed trial is
  journalled to disk (:mod:`repro.harness.journal`); rerunning an
  interrupted sweep against its journal reruns only the missing
  trials;
* **accounting** — every run produces a :class:`SweepReport`
  (per-trial attempts, outcomes, wall time) that can be recorded into
  a :class:`~repro.observability.registry.MetricsRegistry` and
  emitted as :class:`~repro.observability.tracer.EventTracer` slices.

The fault-injection counterpart lives in :mod:`repro.harness.chaos`;
``tests/harness/test_chaos.py`` proves that a sweep under injected
crashes, hangs, exceptions and corruption merges bit-identically to a
fault-free run.
"""

from __future__ import annotations

import hashlib
import heapq
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.harness.journal import SweepJournal
from repro.harness.pool import _mp_context, default_workers
from repro.harness.sweep import SweepResult, Trial, TrialFn, derive_seed

#: Attempt outcomes, in severity order.  "ok" terminates the ladder;
#: everything else triggers a retry (or exhaustion).
ATTEMPT_OUTCOMES = ("ok", "exception", "timeout", "crash", "corrupt",
                    "rejected")

#: Trial resolutions: how each trial's slot in the merged results was
#: ultimately filled.  "cached" marks results served from a
#: content-addressed :class:`~repro.memo.store.TrialStore`.
RESOLUTIONS = ("ok", "journal", "cached", "skipped", "defaulted",
               "failed")


class _Skipped:
    """Singleton placeholder for trials dropped by
    ``on_exhausted='skip'`` (kept in ``outcomes`` so indices stay
    aligned with ``trials``; filtered out of ``results()``)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "SKIPPED"

    def __reduce__(self):
        return (_Skipped, ())


#: The skip marker.
SKIPPED = _Skipped()


class SweepFailure(RuntimeError):
    """A trial exhausted its attempts under ``on_exhausted='raise'``."""

    def __init__(self, index: int, attempts: List["TrialAttempt"]):
        causes = ", ".join(a.outcome for a in attempts) or "none"
        super().__init__(
            f"trial {index} failed after {len(attempts)} attempt(s) "
            f"({causes})")
        self.index = index
        self.attempts = attempts


@dataclass(frozen=True)
class FaultPolicy:
    """How hard to try, and what to do when trying stops working."""

    #: Per-attempt deadline in host seconds; None disables the
    #: watchdog (and, absent chaos, keeps single-worker sweeps on the
    #: in-process reference path).
    timeout: Optional[float] = None
    #: Total attempts per trial (first try included).
    max_attempts: int = 3
    #: Exponential backoff before retry k: min(base * factor**(k-1),
    #: cap) seconds.  base=0 disables waiting (tests).
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    #: 'raise' | 'skip' | 'default' — see the module docstring.
    on_exhausted: str = "raise"
    #: Substituted result under ``on_exhausted='default'``.
    default: Any = None
    #: Optional semantic check; returning False fails the attempt
    #: (outcome "rejected") and retries.  Must be picklable if used
    #: with worker processes.
    verify: Optional[Callable[[Any], bool]] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.on_exhausted not in ("raise", "skip", "default"):
            raise ValueError(
                f"on_exhausted must be 'raise', 'skip' or 'default', "
                f"not {self.on_exhausted!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Delay before *attempt* (>= 1)."""
        if attempt <= 0 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_base
                   * (self.backoff_factor ** (attempt - 1)),
                   self.backoff_cap)


@dataclass
class TrialAttempt:
    """One attempt of one trial."""

    attempt: int          # 0-based; attempt 0 uses the legacy seed
    outcome: str          # one of ATTEMPT_OUTCOMES
    seed: int
    started: float        # seconds since the sweep began
    duration: float       # host seconds
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "seed": self.seed,
            "started": round(self.started, 6),
            "duration": round(self.duration, 6),
            "error": self.error,
        }


@dataclass
class TrialReport:
    """Everything that happened to one trial."""

    index: int
    attempts: List[TrialAttempt]
    resolution: str       # one of RESOLUTIONS

    @property
    def retries(self) -> int:
        return max(len(self.attempts) - 1, 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "resolution": self.resolution,
            "attempts": [a.to_dict() for a in self.attempts],
        }


@dataclass
class SweepReport:
    """Fault-tolerance accounting for one resilient sweep."""

    label: str
    master_seed: int
    workers: int
    trials: List[TrialReport]
    wall_seconds: float
    #: Trial-store counter deltas for this sweep (hits, misses,
    #: stores, corrupt, stale, rejected, uncacheable, bytes), or
    #: ``None`` when no store was attached.
    cache: Optional[Dict[str, int]] = None

    @property
    def attempts_total(self) -> int:
        return sum(len(t.attempts) for t in self.trials)

    @property
    def retries_total(self) -> int:
        return sum(t.retries for t in self.trials)

    def outcome_counts(self) -> Dict[str, int]:
        """Failed-attempt tally by cause (``ok`` excluded)."""
        counts = {outcome: 0 for outcome in ATTEMPT_OUTCOMES
                  if outcome != "ok"}
        for trial in self.trials:
            for attempt in trial.attempts:
                if attempt.outcome != "ok":
                    counts[attempt.outcome] += 1
        return counts

    def resolution_counts(self) -> Dict[str, int]:
        counts = {resolution: 0 for resolution in RESOLUTIONS}
        for trial in self.trials:
            counts[trial.resolution] += 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "master_seed": self.master_seed,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "attempts_total": self.attempts_total,
            "retries_total": self.retries_total,
            "failures": self.outcome_counts(),
            "resolutions": self.resolution_counts(),
            "cache": self.cache,
            "trials": [t.to_dict() for t in self.trials],
        }

    def record_into(self, metrics: Any,
                    prefix: str = "harness.sweep") -> None:
        """Record the report's counters into a
        :class:`~repro.observability.registry.MetricsRegistry` so
        sweep failure/attempt counts travel in exported metrics JSON
        alongside the simulation counters."""
        base = f"{prefix}.{self.label}" if self.label else prefix
        metrics.counter(f"{base}.trials").inc(len(self.trials))
        metrics.counter(f"{base}.attempts").inc(self.attempts_total)
        metrics.counter(f"{base}.retries").inc(self.retries_total)
        for outcome, count in self.outcome_counts().items():
            metrics.counter(f"{base}.failures.{outcome}").inc(count)
        for resolution, count in self.resolution_counts().items():
            metrics.counter(
                f"{base}.resolutions.{resolution}").inc(count)
        for name, count in (self.cache or {}).items():
            metrics.counter(f"{base}.cache.{name}").inc(count)
        metrics.gauge(f"{base}.wall_seconds").set(
            round(self.wall_seconds, 6))

    def emit_trace(self, tracer: Any) -> None:
        """Emit one Chrome-trace slice per attempt (µs timebase,
        harness track) — replay windows and retry storms line up in
        Perfetto next to the simulation's own slices."""
        from repro.observability.tracer import HARNESS_TID
        name = self.label or "sweep"
        for trial in self.trials:
            for attempt in trial.attempts:
                tracer.complete(
                    f"{name}[{trial.index}]#{attempt.attempt}",
                    int(attempt.started * 1e6),
                    int(attempt.duration * 1e6),
                    cat="harness", tid=HARNESS_TID,
                    outcome=attempt.outcome,
                    error=attempt.error or None)


@dataclass
class ResilientSweepResult(SweepResult):
    """A :class:`~repro.harness.sweep.SweepResult` plus the
    fault-tolerance accounting.  ``outcomes`` keeps one slot per
    trial (``SKIPPED`` marks dropped trials); ``results()`` filters
    the markers out."""

    report: Optional[SweepReport] = None

    def results(self) -> List[Any]:
        return [o for o in self.outcomes if o is not SKIPPED]


# --- sweep-report collector (benchmark harness hook) ----------------------

_report_collector: Optional[List[SweepReport]] = None


def note_sweep_report(report: SweepReport) -> None:
    """Called at the end of every resilient sweep; records the report
    when a collector is active (same idiom as
    :func:`repro.observability.profiler.note_machine`)."""
    if _report_collector is not None:
        _report_collector.append(report)


@contextmanager
def collect_sweep_reports() -> Iterator[List[SweepReport]]:
    """Collect every :class:`SweepReport` produced in this block."""
    global _report_collector
    previous = _report_collector
    reports: List[SweepReport] = []
    _report_collector = reports
    try:
        yield reports
    finally:
        _report_collector = previous


# --- worker side ----------------------------------------------------------


def _attempt_worker(fn, params, seed, chaos, index, attempt, conn):
    """Run one attempt in a worker process and ship the result with an
    integrity digest.  Chaos hooks run here — inside the blast radius
    the supervisor is designed to contain."""
    try:
        if chaos is not None:
            chaos.before(index, attempt)
        result = fn(params, seed)
        payload = pickle.dumps(result,
                               protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        if chaos is not None:
            payload = chaos.mangle(index, attempt, payload)
        conn.send_bytes(pickle.dumps(("ok", digest, payload)))
    except BaseException as exc:  # noqa: BLE001 — must report, not die
        try:
            conn.send_bytes(pickle.dumps(
                ("error", f"{type(exc).__name__}: {exc}")))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


# --- supervisor -----------------------------------------------------------


@dataclass
class _InFlight:
    trial: Trial
    attempt: int
    seed: int
    process: Any
    conn: Any
    started: float       # seconds since sweep start
    deadline: Optional[float]


class _TrialState:
    __slots__ = ("trial", "attempts")

    def __init__(self, trial: Trial):
        self.trial = trial
        self.attempts: List[TrialAttempt] = []


class _Supervisor:
    """Bounded-parallelism process supervisor with a watchdog."""

    def __init__(self, trial_fn: TrialFn, todo: Sequence[Trial], *,
                 policy: FaultPolicy, master_seed: int, label: str,
                 workers: int, chaos: Any,
                 journal: Optional[SweepJournal],
                 outcomes: Dict[int, Any],
                 reports: Dict[int, TrialReport],
                 t0: float):
        self.trial_fn = trial_fn
        self.policy = policy
        self.master_seed = master_seed
        self.label = label
        self.workers = max(workers, 1)
        self.chaos = chaos
        self.journal = journal
        self.outcomes = outcomes
        self.reports = reports
        self.t0 = t0
        self.ctx = _mp_context()
        self.states = {t.index: _TrialState(t) for t in todo}
        #: (ready_at, tie-break, trial, attempt) — backoff scheduling.
        self._pending: List[Tuple[float, int, Trial, int]] = []
        self._tick = 0
        for trial in todo:
            self._push(trial, attempt=0, ready_at=0.0)
        self.inflight: Dict[Any, _InFlight] = {}

    # --- time -------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self.t0

    # --- scheduling -------------------------------------------------------

    def _push(self, trial: Trial, attempt: int,
              ready_at: float) -> None:
        self._tick += 1
        heapq.heappush(self._pending,
                       (ready_at, self._tick, trial, attempt))

    def _seed_for(self, trial: Trial, attempt: int) -> int:
        if attempt == 0:
            return trial.seed
        return derive_seed(self.master_seed, trial.index, self.label,
                           attempt)

    def _spawn(self, trial: Trial, attempt: int) -> None:
        seed = self._seed_for(trial, attempt)
        recv_conn, send_conn = self.ctx.Pipe(duplex=False)
        process = self.ctx.Process(
            target=_attempt_worker,
            args=(self.trial_fn, trial.params, seed, self.chaos,
                  trial.index, attempt, send_conn),
            daemon=True)
        process.start()
        # Close the parent's copy of the write end: the child dying is
        # then guaranteed to surface as EOF on recv_conn.
        send_conn.close()
        now = self._now()
        deadline = (None if self.policy.timeout is None
                    else now + self.policy.timeout)
        self.inflight[recv_conn] = _InFlight(
            trial=trial, attempt=attempt, seed=seed, process=process,
            conn=recv_conn, started=now, deadline=deadline)

    # --- reaping ----------------------------------------------------------

    def _dispose(self, flight: _InFlight, kill: bool = False) -> None:
        if kill:
            flight.process.terminate()
            flight.process.join(timeout=0.5)
            if flight.process.is_alive():
                flight.process.kill()
        flight.process.join(timeout=10)
        try:
            flight.conn.close()
        except Exception:
            pass

    def _reap_timeout(self, flight: _InFlight) -> None:
        self.inflight.pop(flight.conn, None)
        self._dispose(flight, kill=True)
        self._failure(flight, "timeout",
                      f"attempt exceeded the "
                      f"{self.policy.timeout}s watchdog deadline")

    # --- outcome bookkeeping ----------------------------------------------

    def _attempt_record(self, flight: _InFlight,
                        outcome: str, error: str) -> TrialAttempt:
        return TrialAttempt(
            attempt=flight.attempt, outcome=outcome, seed=flight.seed,
            started=flight.started,
            duration=max(self._now() - flight.started, 0.0),
            error=error)

    def _success(self, flight: _InFlight, result: Any) -> None:
        state = self.states[flight.trial.index]
        state.attempts.append(
            self._attempt_record(flight, "ok", ""))
        self.outcomes[flight.trial.index] = result
        self.reports[flight.trial.index] = TrialReport(
            index=flight.trial.index, attempts=state.attempts,
            resolution="ok")
        if self.journal is not None:
            self.journal.record(flight.trial.index, flight.attempt,
                                flight.seed, result)

    def _failure(self, flight: _InFlight, outcome: str,
                 error: str) -> None:
        # The flight is already out of self.inflight by the time any
        # failure is recorded.
        state = self.states[flight.trial.index]
        state.attempts.append(
            self._attempt_record(flight, outcome, error))
        next_attempt = flight.attempt + 1
        if next_attempt < self.policy.max_attempts:
            self._push(flight.trial, next_attempt,
                       self._now() + self.policy.backoff(next_attempt))
            return
        self._exhausted(flight.trial, state)

    def _exhausted(self, trial: Trial, state: _TrialState) -> None:
        policy = self.policy
        if policy.on_exhausted == "raise":
            self.reports[trial.index] = TrialReport(
                index=trial.index, attempts=state.attempts,
                resolution="failed")
            self._shutdown()
            raise SweepFailure(trial.index, state.attempts)
        if policy.on_exhausted == "skip":
            self.outcomes[trial.index] = SKIPPED
            resolution = "skipped"
        else:
            self.outcomes[trial.index] = policy.default
            resolution = "defaulted"
        self.reports[trial.index] = TrialReport(
            index=trial.index, attempts=state.attempts,
            resolution=resolution)

    def _shutdown(self) -> None:
        """Kill and reap every in-flight worker (abort path)."""
        for flight in list(self.inflight.values()):
            self._dispose(flight, kill=True)
        self.inflight.clear()

    # --- main loop --------------------------------------------------------

    def run(self) -> None:
        try:
            self._loop()
        except BaseException:
            self._shutdown()
            raise

    def _loop(self) -> None:
        while self._pending or self.inflight:
            now = self._now()
            while (self._pending
                   and len(self.inflight) < self.workers
                   and self._pending[0][0] <= now):
                _ready, _tick, trial, attempt = \
                    heapq.heappop(self._pending)
                self._spawn(trial, attempt)
            if not self.inflight:
                # Everything runnable is in backoff: sleep it off.
                wait_for = max(self._pending[0][0] - self._now(), 0.0)
                if wait_for:
                    time.sleep(min(wait_for, 0.25))
                continue
            timeout = self._wait_budget()
            ready = _connection_wait(list(self.inflight.keys()),
                                     timeout)
            for conn in ready:
                flight = self.inflight.pop(conn, None)
                if flight is not None:
                    self._reap(flight)
            now = self._now()
            for flight in [f for f in self.inflight.values()
                           if f.deadline is not None
                           and f.deadline <= now]:
                self._reap_timeout(flight)

    def _reap(self, flight: _InFlight) -> None:
        """The worker's pipe became readable: result, error or EOF.
        *flight* is already out of ``self.inflight``."""
        try:
            blob = flight.conn.recv_bytes()
        except (EOFError, OSError):
            self._dispose(flight)
            code = flight.process.exitcode
            self._failure(flight, "crash",
                          f"worker died without a result "
                          f"(exit code {code})")
            return
        self._dispose(flight)
        try:
            message = pickle.loads(blob)
        except Exception as exc:
            self._failure(flight, "corrupt",
                          f"undecodable worker envelope: {exc}")
            return
        if message[0] == "error":
            self._failure(flight, "exception", message[1])
            return
        _tag, digest, payload = message
        if hashlib.sha256(payload).hexdigest() != digest:
            self._failure(flight, "corrupt",
                          "result payload failed its integrity digest")
            return
        try:
            result = pickle.loads(payload)
        except Exception as exc:
            self._failure(flight, "corrupt",
                          f"result payload failed to unpickle: {exc}")
            return
        if self.policy.verify is not None \
                and not self.policy.verify(result):
            self._failure(flight, "rejected",
                          "verify hook rejected the result")
            return
        self._success(flight, result)

    def _wait_budget(self) -> float:
        """Seconds to block in connection-wait: until the earliest
        watchdog deadline or backoff expiry, capped for liveness."""
        now = self._now()
        horizon = 0.25
        deadlines = [f.deadline for f in self.inflight.values()
                     if f.deadline is not None]
        if deadlines:
            horizon = min(horizon, max(min(deadlines) - now, 0.0))
        if self._pending and len(self.inflight) < self.workers:
            horizon = min(horizon,
                          max(self._pending[0][0] - now, 0.0))
        return max(horizon, 0.0)


# --- inline reference path ------------------------------------------------


def _run_inline(trial_fn: TrialFn, todo: Sequence[Trial], *,
                policy: FaultPolicy, master_seed: int, label: str,
                journal: Optional[SweepJournal],
                outcomes: Dict[int, Any],
                reports: Dict[int, TrialReport], t0: float) -> None:
    """Single-worker, no-watchdog path: runs attempts in-process (no
    pickling), which is the reference execution the supervised path
    must reproduce."""
    for trial in todo:
        attempts: List[TrialAttempt] = []
        resolved = False
        for attempt in range(policy.max_attempts):
            if attempt:
                delay = policy.backoff(attempt)
                if delay:
                    time.sleep(delay)
            seed = (trial.seed if attempt == 0
                    else derive_seed(master_seed, trial.index, label,
                                     attempt))
            started = time.perf_counter() - t0
            try:
                result = trial_fn(trial.params, seed)
                duration = time.perf_counter() - t0 - started
                if policy.verify is not None \
                        and not policy.verify(result):
                    attempts.append(TrialAttempt(
                        attempt=attempt, outcome="rejected",
                        seed=seed, started=started, duration=duration,
                        error="verify hook rejected the result"))
                    continue
                attempts.append(TrialAttempt(
                    attempt=attempt, outcome="ok", seed=seed,
                    started=started, duration=duration))
                outcomes[trial.index] = result
                reports[trial.index] = TrialReport(
                    index=trial.index, attempts=attempts,
                    resolution="ok")
                if journal is not None:
                    journal.record(trial.index, attempt, seed, result)
                resolved = True
                break
            except Exception as exc:
                duration = time.perf_counter() - t0 - started
                attempts.append(TrialAttempt(
                    attempt=attempt, outcome="exception", seed=seed,
                    started=started, duration=duration,
                    error=f"{type(exc).__name__}: {exc}"))
        if resolved:
            continue
        if policy.on_exhausted == "raise":
            reports[trial.index] = TrialReport(
                index=trial.index, attempts=attempts,
                resolution="failed")
            raise SweepFailure(trial.index, attempts)
        if policy.on_exhausted == "skip":
            outcomes[trial.index] = SKIPPED
            resolution = "skipped"
        else:
            outcomes[trial.index] = policy.default
            resolution = "defaulted"
        reports[trial.index] = TrialReport(
            index=trial.index, attempts=attempts,
            resolution=resolution)


# --- batch-fleet pre-pass -------------------------------------------------


def _fleet_prepass(trial_fn: TrialFn, todo: Sequence[Trial], *,
                   journal: Optional[SweepJournal],
                   outcomes: Dict[int, Any],
                   reports: Dict[int, TrialReport],
                   t0: float) -> List[Trial]:
    """Resolve what the batch fleet can; return the trials that still
    need the scalar retry ladder.

    Every lane that completes becomes an attempt-0 "ok" resolution
    (journalled like any first-attempt success); a lane that errors is
    handed to the ladder *without* recording an attempt, so its retry
    budget and seed lineage are untouched — the ladder reruns it
    scalar from attempt 0 exactly as if the fleet had never existed.
    Any failure of the fleet machinery itself degrades silently to the
    full scalar path: resilience never trades fault tolerance for
    throughput.
    """
    started = time.perf_counter() - t0
    try:
        from repro.batch.fleet import MachineFleet
        plan = trial_fn.fleet_plan  # type: ignore[attr-defined]
        lane_outcomes = MachineFleet(
            plan, [(t.seed, t.params) for t in todo]).run()
    except Exception:
        return list(todo)
    duration = max(time.perf_counter() - t0 - started, 0.0)
    remaining: List[Trial] = []
    for trial, lane in zip(todo, lane_outcomes):
        if lane.error is not None:
            remaining.append(trial)
            continue
        outcomes[trial.index] = lane.result
        reports[trial.index] = TrialReport(
            index=trial.index,
            attempts=[TrialAttempt(attempt=0, outcome="ok",
                                   seed=trial.seed, started=started,
                                   duration=duration)],
            resolution="ok")
        if journal is not None:
            journal.record(trial.index, 0, trial.seed, lane.result)
    return remaining


# --- driver ---------------------------------------------------------------


def _trial_keys(trial_fn: TrialFn, trials: Sequence[Trial],
                store: Any) -> Dict[int, str]:
    """Content addresses for every keyable trial; unkeyable trials
    are simply absent (they run uncached, with a counter bump)."""
    from repro.memo.keys import Unmemoizable, trial_key
    keys: Dict[int, str] = {}
    for trial in trials:
        try:
            keys[trial.index] = trial_key(trial_fn, trial.params,
                                          trial.seed)
        except Unmemoizable:
            store.note_uncacheable()
    return keys


def run_resilient_sweep(trial_fn: TrialFn, params: Sequence[Any], *,
                        master_seed: int = 0,
                        workers: Optional[int] = None,
                        label: str = "",
                        policy: Optional[FaultPolicy] = None,
                        chaos: Any = None,
                        journal: Any = None,
                        store: Any = None,
                        metrics: Any = None,
                        tracer: Any = None,
                        backend: str = "scalar") -> ResilientSweepResult:
    """Run a sweep that survives crashing, hanging and lying workers.

    Drop-in superset of :func:`repro.harness.run_sweep`: same trial
    contract, same seed derivation, same trial-order merge — plus the
    :class:`FaultPolicy` retry ladder, optional
    :class:`~repro.harness.chaos.ChaosPlan` injection, optional
    on-disk *journal* (path or :class:`SweepJournal`) for resume,
    optional content-addressed *store* (path or
    :class:`~repro.memo.store.TrialStore`) that serves previously
    computed trials across sweeps and processes, and optional
    *metrics* registry / *tracer* to record the :class:`SweepReport`
    into.

    Store semantics: a trial whose key (trial-function fingerprint +
    canonical params + derived seed) has a sound record is resolved
    "cached" without running; first-attempt successes are persisted
    for future sweeps.  ``FaultPolicy.verify`` vets cached results
    exactly like fresh ones — a rejected or corrupt record is a miss
    that recomputes, never a wrong result.

    Execution path selection: with no chaos, no watchdog timeout and
    one worker, trials run inline in this process (bit-compatible with
    ``run_sweep(workers=1)`` plus retries); otherwise every attempt
    gets its own supervised worker process.

    ``backend="batch"`` (requires a *trial_fn* carrying a
    ``fleet_plan``; see :class:`repro.batch.FleetTrial`) runs a fleet
    pre-pass over the unresolved trials first: lanes the fleet
    completes resolve as ordinary attempt-0 successes (journalled and
    store-persisted like any other), lanes that error fall through to
    the scalar retry ladder with their full attempt budget, and any
    failure of the fleet itself silently degrades to the all-scalar
    path.  The pre-pass is skipped under chaos injection — chaos
    faults target per-attempt workers, which the fleet would bypass.
    """
    if backend not in ("scalar", "batch"):
        raise ValueError(f"unknown sweep backend {backend!r}; "
                         f"expected 'scalar' or 'batch'")
    if (backend == "batch"
            and getattr(trial_fn, "fleet_plan", None) is None):
        raise ValueError(
            "backend='batch' needs a trial function that carries a "
            "fleet_plan attribute (see repro.batch.FleetTrial); "
            f"{trial_fn!r} does not")
    policy = policy or FaultPolicy()
    params = list(params)
    trials = [Trial(index=i,
                    seed=derive_seed(master_seed, i, label), params=p)
              for i, p in enumerate(params)]
    outcomes: Dict[int, Any] = {}
    reports: Dict[int, TrialReport] = {}

    journal_obj: Optional[SweepJournal] = None
    if journal is not None:
        journal_obj = (journal if isinstance(journal, SweepJournal)
                       else SweepJournal(journal))
        for index, (attempt, result) in journal_obj.open(
                label, master_seed, len(trials)).items():
            outcomes[index] = result
            reports[index] = TrialReport(index=index, attempts=[],
                                         resolution="journal")

    store_obj = None
    keys: Dict[int, str] = {}
    counts_before: Dict[str, int] = {}
    if store is not None:
        from repro.memo.store import TrialStore
        store_obj = (store if isinstance(store, TrialStore)
                     else TrialStore(store))
        counts_before = store_obj.counts()
        keys = _trial_keys(trial_fn, trials, store_obj)
        for trial in trials:
            if trial.index in reports or trial.index not in keys:
                continue
            hit, result = store_obj.get(keys[trial.index],
                                        verify=policy.verify)
            if hit:
                outcomes[trial.index] = result
                reports[trial.index] = TrialReport(
                    index=trial.index, attempts=[],
                    resolution="cached")

    todo = [t for t in trials if t.index not in reports]
    if workers is None:
        effective_workers = default_workers()
    else:
        effective_workers = max(int(workers), 1)
    effective_workers = min(effective_workers, max(len(todo), 1))

    t0 = time.perf_counter()
    try:
        remaining = todo
        if todo and backend == "batch" and chaos is None:
            remaining = _fleet_prepass(trial_fn, todo,
                                       journal=journal_obj,
                                       outcomes=outcomes,
                                       reports=reports, t0=t0)
            effective_workers = min(effective_workers,
                                    max(len(remaining), 1))
        if remaining:
            supervised = (chaos is not None
                          or policy.timeout is not None
                          or effective_workers > 1)
            if supervised:
                _Supervisor(trial_fn, remaining, policy=policy,
                            master_seed=master_seed, label=label,
                            workers=effective_workers, chaos=chaos,
                            journal=journal_obj, outcomes=outcomes,
                            reports=reports, t0=t0).run()
            else:
                _run_inline(trial_fn, remaining, policy=policy,
                            master_seed=master_seed, label=label,
                            journal=journal_obj, outcomes=outcomes,
                            reports=reports, t0=t0)
    finally:
        if journal_obj is not None:
            journal_obj.close()

    if store_obj is not None:
        # Persist first-attempt successes only: a retry ran with an
        # attempt-k seed, and lookups always use the attempt-0 seed,
        # so caching a retried result would pair the wrong lineage.
        for trial in todo:
            trial_report = reports.get(trial.index)
            if (trial.index in keys
                    and trial_report is not None
                    and trial_report.resolution == "ok"
                    and trial_report.attempts
                    and trial_report.attempts[-1].attempt == 0):
                store_obj.put(keys[trial.index], trial.seed,
                              outcomes[trial.index])

    wall = time.perf_counter() - t0
    cache_delta: Optional[Dict[str, int]] = None
    if store_obj is not None:
        counts_after = store_obj.counts()
        cache_delta = {name: counts_after[name]
                       - counts_before.get(name, 0)
                       for name in counts_after}
    report = SweepReport(
        label=label, master_seed=master_seed,
        workers=effective_workers,
        trials=[reports[t.index] for t in trials],
        wall_seconds=wall, cache=cache_delta)
    if metrics is not None:
        report.record_into(metrics)
    if tracer is not None:
        report.emit_trace(tracer)
    note_sweep_report(report)
    return ResilientSweepResult(
        label=label, master_seed=master_seed, trials=trials,
        outcomes=[outcomes[t.index] for t in trials],
        report=report)


__all__ = [
    "ATTEMPT_OUTCOMES",
    "RESOLUTIONS",
    "SKIPPED",
    "FaultPolicy",
    "ResilientSweepResult",
    "SweepFailure",
    "SweepReport",
    "TrialAttempt",
    "TrialReport",
    "collect_sweep_reports",
    "note_sweep_report",
    "run_resilient_sweep",
]
