"""Fault-tolerant sweep execution: watchdog, retries, degradation.

:func:`repro.harness.run_sweep` assumes every trial succeeds: one
crashed or hung worker process loses the whole sweep.  At experiment
volume that assumption fails routinely — OOM kills, wedged simulations,
flaky serialisation — so this layer wraps the sweep contract in a
supervisor that *expects* trials to misbehave:

* **watchdog timeouts** — each attempt runs in its own worker process
  with a deadline; the supervisor kills and reaps workers that blow
  it, reclaiming the slot immediately;
* **bounded retries with fresh seed lineage** — attempt *k* of trial
  *i* reruns with ``derive_seed(master, i, label, attempt=k)``
  (attempt 0 is bit-identical to the historical seed), plus
  exponential backoff between attempts.  Because both the retry seed
  and the retry *decision* depend only on ``(master_seed, label,
  index, attempt)`` and the observed failures, merged results are
  invariant to worker count and to *when* failures land in wall-clock
  time;
* **result integrity** — workers ship their result with a SHA-256 of
  the pickled payload; a digest mismatch (or an
  optional semantic ``FaultPolicy.verify`` hook returning False)
  counts as a failed attempt and retries like any other fault;
* **graceful degradation** — when a trial exhausts its attempts,
  ``on_exhausted`` picks between ``'raise'`` (abort the sweep),
  ``'skip'`` (drop the trial from merged results) and ``'default'``
  (substitute ``FaultPolicy.default``);
* **checkpointing** — with ``journal=path`` every completed trial is
  journalled to disk (:mod:`repro.harness.journal`); rerunning an
  interrupted sweep against its journal reruns only the missing
  trials;
* **accounting** — every run produces a :class:`SweepReport`
  (per-trial attempts, outcomes, wall time) that can be recorded into
  a :class:`~repro.observability.registry.MetricsRegistry` and
  emitted as :class:`~repro.observability.tracer.EventTracer` slices.

The fault-injection counterpart lives in :mod:`repro.harness.chaos`;
``tests/harness/test_chaos.py`` proves that a sweep under injected
crashes, hangs, exceptions and corruption merges bit-identically to a
fault-free run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
)

from repro.harness.journal import SweepJournal
from repro.harness.pool import default_workers
from repro.harness.sweep import SweepResult, Trial, TrialFn, derive_seed

#: Attempt outcomes, in severity order.  "ok" terminates the ladder;
#: everything else triggers a retry (or exhaustion).
ATTEMPT_OUTCOMES = ("ok", "exception", "timeout", "crash", "corrupt",
                    "rejected")

#: Trial resolutions: how each trial's slot in the merged results was
#: ultimately filled.  "cached" marks results served from a
#: content-addressed :class:`~repro.memo.store.TrialStore`.
RESOLUTIONS = ("ok", "journal", "cached", "skipped", "defaulted",
               "failed")


class _Skipped:
    """Singleton placeholder for trials dropped by
    ``on_exhausted='skip'`` (kept in ``outcomes`` so indices stay
    aligned with ``trials``; filtered out of ``results()``)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "SKIPPED"

    def __reduce__(self):
        return (_Skipped, ())


#: The skip marker.
SKIPPED = _Skipped()


class SweepFailure(RuntimeError):
    """A trial exhausted its attempts under ``on_exhausted='raise'``."""

    def __init__(self, index: int, attempts: List["TrialAttempt"]):
        causes = ", ".join(a.outcome for a in attempts) or "none"
        super().__init__(
            f"trial {index} failed after {len(attempts)} attempt(s) "
            f"({causes})")
        self.index = index
        self.attempts = attempts


@dataclass(frozen=True)
class FaultPolicy:
    """How hard to try, and what to do when trying stops working."""

    #: Per-attempt deadline in host seconds; None disables the
    #: watchdog (and, absent chaos, keeps single-worker sweeps on the
    #: in-process reference path).
    timeout: Optional[float] = None
    #: Total attempts per trial (first try included).
    max_attempts: int = 3
    #: Exponential backoff before retry k: min(base * factor**(k-1),
    #: cap) seconds.  base=0 disables waiting (tests).
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    #: 'raise' | 'skip' | 'default' — see the module docstring.
    on_exhausted: str = "raise"
    #: Substituted result under ``on_exhausted='default'``.
    default: Any = None
    #: Optional semantic check; returning False fails the attempt
    #: (outcome "rejected") and retries.  Must be picklable if used
    #: with worker processes.
    verify: Optional[Callable[[Any], bool]] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.on_exhausted not in ("raise", "skip", "default"):
            raise ValueError(
                f"on_exhausted must be 'raise', 'skip' or 'default', "
                f"not {self.on_exhausted!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Delay before *attempt* (>= 1)."""
        if attempt <= 0 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_base
                   * (self.backoff_factor ** (attempt - 1)),
                   self.backoff_cap)


@dataclass
class TrialAttempt:
    """One attempt of one trial."""

    attempt: int          # 0-based; attempt 0 uses the legacy seed
    outcome: str          # one of ATTEMPT_OUTCOMES
    seed: int
    started: float        # seconds since the sweep began
    duration: float       # host seconds
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "seed": self.seed,
            "started": round(self.started, 6),
            "duration": round(self.duration, 6),
            "error": self.error,
        }


@dataclass
class TrialReport:
    """Everything that happened to one trial."""

    index: int
    attempts: List[TrialAttempt]
    resolution: str       # one of RESOLUTIONS

    @property
    def retries(self) -> int:
        return max(len(self.attempts) - 1, 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "resolution": self.resolution,
            "attempts": [a.to_dict() for a in self.attempts],
        }


@dataclass
class SweepReport:
    """Fault-tolerance accounting for one resilient sweep."""

    label: str
    master_seed: int
    workers: int
    trials: List[TrialReport]
    wall_seconds: float
    #: Trial-store counter deltas for this sweep (hits, misses,
    #: stores, corrupt, stale, rejected, uncacheable, bytes), or
    #: ``None`` when no store was attached.
    cache: Optional[Dict[str, int]] = None

    @property
    def attempts_total(self) -> int:
        return sum(len(t.attempts) for t in self.trials)

    @property
    def retries_total(self) -> int:
        return sum(t.retries for t in self.trials)

    def outcome_counts(self) -> Dict[str, int]:
        """Failed-attempt tally by cause (``ok`` excluded)."""
        counts = {outcome: 0 for outcome in ATTEMPT_OUTCOMES
                  if outcome != "ok"}
        for trial in self.trials:
            for attempt in trial.attempts:
                if attempt.outcome != "ok":
                    counts[attempt.outcome] += 1
        return counts

    def resolution_counts(self) -> Dict[str, int]:
        counts = {resolution: 0 for resolution in RESOLUTIONS}
        for trial in self.trials:
            counts[trial.resolution] += 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "master_seed": self.master_seed,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "attempts_total": self.attempts_total,
            "retries_total": self.retries_total,
            "failures": self.outcome_counts(),
            "resolutions": self.resolution_counts(),
            "cache": self.cache,
            "trials": [t.to_dict() for t in self.trials],
        }

    def record_into(self, metrics: Any,
                    prefix: str = "harness.sweep") -> None:
        """Record the report's counters into a
        :class:`~repro.observability.registry.MetricsRegistry` so
        sweep failure/attempt counts travel in exported metrics JSON
        alongside the simulation counters."""
        base = f"{prefix}.{self.label}" if self.label else prefix
        metrics.counter(f"{base}.trials").inc(len(self.trials))
        metrics.counter(f"{base}.attempts").inc(self.attempts_total)
        metrics.counter(f"{base}.retries").inc(self.retries_total)
        for outcome, count in self.outcome_counts().items():
            metrics.counter(f"{base}.failures.{outcome}").inc(count)
        for resolution, count in self.resolution_counts().items():
            metrics.counter(
                f"{base}.resolutions.{resolution}").inc(count)
        for name, count in (self.cache or {}).items():
            metrics.counter(f"{base}.cache.{name}").inc(count)
        metrics.gauge(f"{base}.wall_seconds").set(
            round(self.wall_seconds, 6))

    def emit_trace(self, tracer: Any) -> None:
        """Emit one Chrome-trace slice per attempt (µs timebase,
        harness track) — replay windows and retry storms line up in
        Perfetto next to the simulation's own slices."""
        from repro.observability.tracer import HARNESS_TID
        name = self.label or "sweep"
        for trial in self.trials:
            for attempt in trial.attempts:
                tracer.complete(
                    f"{name}[{trial.index}]#{attempt.attempt}",
                    int(attempt.started * 1e6),
                    int(attempt.duration * 1e6),
                    cat="harness", tid=HARNESS_TID,
                    outcome=attempt.outcome,
                    error=attempt.error or None)


@dataclass
class ResilientSweepResult(SweepResult):
    """A :class:`~repro.harness.sweep.SweepResult` plus the
    fault-tolerance accounting.  ``outcomes`` keeps one slot per
    trial (``SKIPPED`` marks dropped trials); ``results()`` filters
    the markers out."""

    report: Optional[SweepReport] = None

    def results(self) -> List[Any]:
        return [o for o in self.outcomes if o is not SKIPPED]


# --- sweep-report collector (benchmark harness hook) ----------------------

_report_collector: Optional[List[SweepReport]] = None


def note_sweep_report(report: SweepReport) -> None:
    """Called at the end of every resilient sweep; records the report
    when a collector is active (same idiom as
    :func:`repro.observability.profiler.note_machine`)."""
    if _report_collector is not None:
        _report_collector.append(report)


@contextmanager
def collect_sweep_reports() -> Iterator[List[SweepReport]]:
    """Collect every :class:`SweepReport` produced in this block."""
    global _report_collector
    previous = _report_collector
    reports: List[SweepReport] = []
    _report_collector = reports
    try:
        yield reports
    finally:
        _report_collector = previous


# --- driver ---------------------------------------------------------------


def _trial_keys(trial_fn: TrialFn, trials: Sequence[Trial],
                store: Any) -> Dict[int, str]:
    """Content addresses for every keyable trial; unkeyable trials
    are simply absent (they run uncached, with a counter bump)."""
    from repro.memo.keys import Unmemoizable, trial_key
    keys: Dict[int, str] = {}
    for trial in trials:
        try:
            keys[trial.index] = trial_key(trial_fn, trial.params,
                                          trial.seed)
        except Unmemoizable:
            store.note_uncacheable()
    return keys


def run_resilient_sweep(trial_fn: TrialFn, params: Sequence[Any], *,
                        master_seed: int = 0,
                        workers: Optional[int] = None,
                        label: str = "",
                        policy: Optional[FaultPolicy] = None,
                        chaos: Any = None,
                        journal: Any = None,
                        store: Any = None,
                        metrics: Any = None,
                        tracer: Any = None,
                        backend: str = "scalar") -> ResilientSweepResult:
    """Run a sweep that survives crashing, hanging and lying workers.

    Drop-in superset of :func:`repro.harness.run_sweep`: same trial
    contract, same seed derivation, same trial-order merge — plus the
    :class:`FaultPolicy` retry ladder, optional
    :class:`~repro.harness.chaos.ChaosPlan` injection, optional
    on-disk *journal* (path or :class:`SweepJournal`) for resume,
    optional content-addressed *store* (path or
    :class:`~repro.memo.store.TrialStore`) that serves previously
    computed trials across sweeps and processes, and optional
    *metrics* registry / *tracer* to record the :class:`SweepReport`
    into.

    Store semantics: a trial whose key (trial-function fingerprint +
    canonical params + derived seed) has a sound record is resolved
    "cached" without running; first-attempt successes are persisted
    for future sweeps.  ``FaultPolicy.verify`` vets cached results
    exactly like fresh ones — a rejected or corrupt record is a miss
    that recomputes, never a wrong result.

    Execution is delegated to a pluggable
    :class:`~repro.harness.backends.ExecutionBackend` named by
    *backend* (or an instance passed directly):

    * ``"scalar"`` (default) auto-selects — with no chaos, no
      watchdog timeout and one worker, trials run inline in this
      process (bit-compatible with ``run_sweep(workers=1)`` plus
      retries); otherwise every attempt gets its own supervised
      worker process;
    * ``"inline"`` / ``"pool"`` force those two paths explicitly;
    * ``"batch"`` (requires a *trial_fn* carrying a ``fleet_plan``;
      see :class:`repro.batch.FleetTrial`) runs a fleet pre-pass
      over the unresolved trials first: lanes the fleet completes
      resolve as ordinary attempt-0 successes (journalled and
      store-persisted like any other), lanes that error fall through
      to the scalar retry ladder with their full attempt budget, and
      any failure of the fleet itself silently degrades to the
      all-scalar path.  The pre-pass is skipped under chaos
      injection — chaos faults target per-attempt workers, which the
      fleet would bypass.

    All backends produce bit-identical results for the same inputs
    (``tests/harness/test_backends.py``).
    """
    from repro.harness.backends import ExecutionRequest, resolve_backend
    backend_obj = resolve_backend(backend)
    backend_obj.validate(trial_fn)
    policy = policy or FaultPolicy()
    params = list(params)
    trials = [Trial(index=i,
                    seed=derive_seed(master_seed, i, label), params=p)
              for i, p in enumerate(params)]
    outcomes: Dict[int, Any] = {}
    reports: Dict[int, TrialReport] = {}

    journal_obj: Optional[SweepJournal] = None
    if journal is not None:
        journal_obj = (journal if isinstance(journal, SweepJournal)
                       else SweepJournal(journal))
        for index, (attempt, result) in journal_obj.open(
                label, master_seed, len(trials)).items():
            outcomes[index] = result
            reports[index] = TrialReport(index=index, attempts=[],
                                         resolution="journal")

    store_obj = None
    keys: Dict[int, str] = {}
    counts_before: Dict[str, int] = {}
    if store is not None:
        from repro.memo.store import TrialStore
        store_obj = (store if isinstance(store, TrialStore)
                     else TrialStore(store))
        counts_before = store_obj.counts()
        keys = _trial_keys(trial_fn, trials, store_obj)
        for trial in trials:
            if trial.index in reports or trial.index not in keys:
                continue
            hit, result = store_obj.get(keys[trial.index],
                                        verify=policy.verify)
            if hit:
                outcomes[trial.index] = result
                reports[trial.index] = TrialReport(
                    index=trial.index, attempts=[],
                    resolution="cached")

    todo = [t for t in trials if t.index not in reports]
    if workers is None:
        effective_workers = default_workers()
    else:
        effective_workers = max(int(workers), 1)
    effective_workers = min(effective_workers, max(len(todo), 1))

    t0 = time.perf_counter()
    request: Optional[ExecutionRequest] = None
    try:
        if todo:
            request = ExecutionRequest(
                trial_fn=trial_fn, todo=todo, policy=policy,
                master_seed=master_seed, label=label,
                workers=effective_workers, chaos=chaos,
                journal=journal_obj, outcomes=outcomes,
                reports=reports, t0=t0)
            backend_obj.execute(request)
    finally:
        if journal_obj is not None:
            journal_obj.close()
    if request is not None:
        # Backends may clamp the worker count (e.g. the batch
        # pre-pass shrinking the remainder); report what actually ran.
        effective_workers = request.workers

    if store_obj is not None:
        # Persist first-attempt successes only: a retry ran with an
        # attempt-k seed, and lookups always use the attempt-0 seed,
        # so caching a retried result would pair the wrong lineage.
        for trial in todo:
            trial_report = reports.get(trial.index)
            if (trial.index in keys
                    and trial_report is not None
                    and trial_report.resolution == "ok"
                    and trial_report.attempts
                    and trial_report.attempts[-1].attempt == 0):
                store_obj.put(keys[trial.index], trial.seed,
                              outcomes[trial.index])

    wall = time.perf_counter() - t0
    cache_delta: Optional[Dict[str, int]] = None
    if store_obj is not None:
        counts_after = store_obj.counts()
        cache_delta = {name: counts_after[name]
                       - counts_before.get(name, 0)
                       for name in counts_after}
    report = SweepReport(
        label=label, master_seed=master_seed,
        workers=effective_workers,
        trials=[reports[t.index] for t in trials],
        wall_seconds=wall, cache=cache_delta)
    if metrics is not None:
        report.record_into(metrics)
    if tracer is not None:
        report.emit_trace(tracer)
    note_sweep_report(report)
    return ResilientSweepResult(
        label=label, master_seed=master_seed, trials=trials,
        outcomes=[outcomes[t.index] for t in trials],
        report=report)


__all__ = [
    "ATTEMPT_OUTCOMES",
    "RESOLUTIONS",
    "SKIPPED",
    "FaultPolicy",
    "ResilientSweepResult",
    "SweepFailure",
    "SweepReport",
    "TrialAttempt",
    "TrialReport",
    "collect_sweep_reports",
    "note_sweep_report",
    "run_resilient_sweep",
]
