"""Parallel experiment harness.

Paper-scale experiments (Fig. 10's 10,000 monitor samples, multi-block
AES key recovery, ablation grids) decompose into *independent seeded
trials* whose results merge order-independently.  This package fans
such trials across worker processes:

* :mod:`repro.harness.pool` — order-preserving process-pool plumbing;
* :mod:`repro.harness.sweep` — deterministic seed derivation, the
  :func:`run_sweep` driver, and merge helpers.

Determinism contract: for a fixed ``master_seed`` the result of a
sweep is identical for any worker count (including in-process
``workers=1``), because each trial's seed is derived from the master
seed and the trial index alone, and results are merged in trial order
no matter which worker finished first.
"""

from repro.harness.pool import default_workers, run_indexed
from repro.harness.sweep import (
    SweepResult,
    Trial,
    derive_seed,
    merge_ordered,
    run_sweep,
)

__all__ = [
    "SweepResult",
    "Trial",
    "default_workers",
    "derive_seed",
    "merge_ordered",
    "run_indexed",
    "run_sweep",
]
