"""Parallel experiment harness.

Paper-scale experiments (Fig. 10's 10,000 monitor samples, multi-block
AES key recovery, ablation grids) decompose into *independent seeded
trials* whose results merge order-independently.  This package fans
such trials across worker processes — and keeps the sweep alive when
workers misbehave:

* :mod:`repro.harness.pool` — order-preserving process-pool plumbing;
* :mod:`repro.harness.backends` — the pluggable
  :class:`ExecutionBackend` layer (inline / supervised pool /
  lockstep batch fleet, plus auto-selecting ``scalar``) every trial
  dispatch path runs through;
* :mod:`repro.harness.sweep` — deterministic seed derivation, the
  :func:`run_sweep` driver, and merge helpers;
* :mod:`repro.harness.resilience` — the fault-tolerant layer:
  watchdog timeouts, bounded retries with fresh seed lineage,
  graceful degradation, journalled resume, and the
  :class:`SweepReport` accounting (:func:`run_resilient_sweep`);
* :mod:`repro.harness.journal` — on-disk checkpointing of completed
  trials so interrupted sweeps resume without rerunning anything;
* :mod:`repro.harness.chaos` — deterministic fault injection
  (:class:`ChaosPlan`) used to *prove* the resilience layer.

Determinism contract: for a fixed ``master_seed`` the result of a
sweep is identical for any worker count (including in-process
``workers=1``), because each trial's seed is derived from the master
seed and the trial index alone, and results are merged in trial order
no matter which worker finished first.  The resilient layer extends
the contract to failures: retry *k* runs with
``derive_seed(master, index, label, attempt=k)``, so merged results
are also invariant to the failure schedule for trials whose outcome
is a pure function of their parameters and seed.
"""

from repro.harness.backends import (
    BatchBackend,
    ExecutionBackend,
    ExecutionRequest,
    InlineBackend,
    PoolBackend,
    ScalarBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.harness.chaos import FAULT_KINDS, ChaosError, ChaosPlan
from repro.harness.journal import (
    JournalError,
    JournalMismatch,
    SweepJournal,
)
from repro.harness.pool import default_workers, run_indexed
from repro.harness.resilience import (
    SKIPPED,
    FaultPolicy,
    ResilientSweepResult,
    SweepFailure,
    SweepReport,
    TrialAttempt,
    TrialReport,
    collect_sweep_reports,
    run_resilient_sweep,
)
from repro.harness.sweep import (
    SweepResult,
    Trial,
    derive_seed,
    merge_ordered,
    run_batched,
    run_sweep,
)

__all__ = [
    "FAULT_KINDS",
    "SKIPPED",
    "BatchBackend",
    "ChaosError",
    "ChaosPlan",
    "ExecutionBackend",
    "ExecutionRequest",
    "FaultPolicy",
    "InlineBackend",
    "PoolBackend",
    "ScalarBackend",
    "JournalError",
    "JournalMismatch",
    "ResilientSweepResult",
    "SweepFailure",
    "SweepJournal",
    "SweepReport",
    "SweepResult",
    "Trial",
    "TrialAttempt",
    "TrialReport",
    "backend_names",
    "collect_sweep_reports",
    "default_workers",
    "register_backend",
    "resolve_backend",
    "derive_seed",
    "merge_ordered",
    "run_batched",
    "run_indexed",
    "run_resilient_sweep",
    "run_sweep",
]
