"""Process-pool plumbing for independent simulation trials.

The simulator is pure Python, so thread pools buy nothing (GIL); the
win comes from full worker *processes*, each running its own machine.
``run_indexed`` hides the multiprocessing details and guarantees that
results come back in submission order even though workers complete in
arbitrary order — the property the sweep layer's determinism contract
rests on.

Trial callables and their arguments must be picklable (top-level
functions, dataclasses of plain values); this is the standard
multiprocessing constraint, and every trial runner in this repository
satisfies it.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker-count default: ``REPRO_WORKERS`` if set, else the CPUs
    this process may actually run on.  Returns at least 1.

    ``os.sched_getaffinity`` is preferred over ``os.cpu_count``
    because cgroup cpusets (CI runners, containers) often pin the
    process to far fewer CPUs than the host owns; sizing the pool to
    the host count there just makes workers fight over the allowed
    cores.
    """
    env = os.environ.get("REPRO_WORKERS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def _mp_context():
    """Prefer fork (cheap, inherits the imported simulator); fall back
    to the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _indexed_call(payload):
    fn, index, item = payload
    return index, fn(item)


def run_indexed(fn: Callable[[T], R], items: Sequence[T],
                workers: Optional[int] = None) -> List[R]:
    """Apply *fn* to every item, returning results in item order.

    ``workers=1`` (or a single item) runs inline in this process — no
    pool, no pickling — which is the reference execution the parallel
    path must reproduce exactly.  ``workers=None`` uses
    :func:`default_workers`.
    """
    items = list(items)
    if not items:
        return []
    if workers is None:
        workers = default_workers()
    workers = min(workers, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    payloads = [(fn, index, item) for index, item in enumerate(items)]
    results: List[Optional[R]] = [None] * len(items)
    ctx = _mp_context()
    with ctx.Pool(processes=workers) as pool:
        # imap_unordered: workers hand back whatever finishes first;
        # the index tag restores submission order.
        for index, result in pool.imap_unordered(_indexed_call,
                                                 payloads):
            results[index] = result
    return results  # type: ignore[return-value]
