"""Deterministic fault injection for the resilient sweep harness.

The chaos layer exists to *prove* the resilience layer: a sweep run
under an adversarial :class:`ChaosPlan` — workers killed mid-trial,
trials hung past the watchdog timeout, exceptions thrown, results
corrupted in flight — must complete via retries and merge to results
bit-identical to a fault-free run (see ``tests/harness/test_chaos.py``).

A plan maps ``(trial_index, attempt)`` to one of four fault kinds:

``"crash"``
    the worker process SIGKILLs itself before producing a result —
    models OOM kills, segfaulting native code, operator ``kill -9``;
``"hang"``
    the worker sleeps far past the per-trial timeout, so only the
    supervisor's watchdog can reclaim the slot;
``"exception"``
    the trial raises :class:`ChaosError` — models ordinary in-band
    failures;
``"corrupt"``
    the worker flips bytes of its *pickled result after digesting it*,
    so the supervisor's verify-hash check must catch the mismatch —
    models transport/serialisation corruption.

Plans are plain data (picklable, hashable-free), keyed on exactly the
coordinates the retry ladder is keyed on, so a chaos schedule is as
deterministic as the sweep itself: the same plan produces the same
failure sequence on every run, for any worker count.

Chaos requires the supervised (subprocess) execution path; the
resilient runner switches to it automatically whenever a plan is
passed.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Optional, Sequence, Tuple

from repro.harness.sweep import derive_seed

#: Valid fault kinds, in documentation order.
FAULT_KINDS = ("crash", "hang", "exception", "corrupt")


class ChaosError(RuntimeError):
    """The injected in-band failure (``kind="exception"``)."""


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic schedule of injected faults.

    ``faults`` maps ``(trial_index, attempt)`` (both 0-based) to a
    fault kind from :data:`FAULT_KINDS`.  Attempts not in the map run
    clean, so any plan that leaves at least one clean attempt per
    trial lets a sufficiently patient policy finish the sweep.
    """

    faults: Dict[Tuple[int, int], str] = field(default_factory=dict)
    #: How long a "hang" sleeps.  Must exceed the policy timeout by a
    #: comfortable margin; the watchdog kills the worker long before
    #: the sleep finishes.
    hang_seconds: float = 30.0

    def __post_init__(self):
        for key, kind in self.faults.items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown chaos kind {kind!r} at {key}; "
                    f"expected one of {FAULT_KINDS}")

    @classmethod
    def seeded(cls, master_seed: int, trial_count: int, *,
               rate: float = 0.5,
               kinds: Sequence[str] = FAULT_KINDS,
               max_faults_per_trial: int = 2,
               label: str = "chaos",
               hang_seconds: float = 30.0) -> "ChaosPlan":
        """Derive a random-looking but fully deterministic plan.

        Per trial, an RNG seeded by ``derive_seed(master, index,
        label)`` decides, for each of the first *max_faults_per_trial*
        attempts, whether to fault (probability *rate*) and with which
        kind.  Keep ``max_faults_per_trial < policy.max_attempts`` so
        every trial retains a clean attempt.
        """
        faults: Dict[Tuple[int, int], str] = {}
        for index in range(trial_count):
            rng = Random(derive_seed(master_seed, index, label))
            for attempt in range(max_faults_per_trial):
                if rng.random() < rate:
                    faults[(index, attempt)] = rng.choice(list(kinds))
        return cls(faults=faults, hang_seconds=hang_seconds)

    def kind(self, index: int, attempt: int) -> Optional[str]:
        return self.faults.get((index, attempt))

    # --- injection points (called inside the worker process) --------------

    def before(self, index: int, attempt: int) -> None:
        """Pre-trial injection: crash, hang or raise."""
        kind = self.kind(index, attempt)
        if kind == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(self.hang_seconds)
        elif kind == "exception":
            raise ChaosError(
                f"injected exception (trial {index}, attempt {attempt})")

    def mangle(self, index: int, attempt: int, payload: bytes) -> bytes:
        """Post-trial injection: corrupt the already-digested result
        payload, so the hash check — not luck — must reject it."""
        if self.kind(index, attempt) != "corrupt" or not payload:
            return payload
        return bytes([payload[0] ^ 0xFF]) + payload[1:]


__all__ = [
    "FAULT_KINDS",
    "ChaosError",
    "ChaosPlan",
]
