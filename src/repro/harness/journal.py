"""On-disk sweep checkpointing: journal completed trials, resume free.

A :class:`SweepJournal` is an append-only JSONL file recording every
*successfully completed* trial of a sweep.  If the sweep process dies
(or is killed) mid-run, rerunning the same sweep against the same
journal replays nothing that already finished: completed results are
loaded straight off disk and only the missing trials execute.  This is
the harness-level analogue of the :mod:`repro.snapshot` discipline —
checkpoint the expensive state, rewind for free.

Layout (one JSON object per line)::

    {"kind": "header", "version": 1, "label": ..., "master_seed": ...,
     "trial_count": N, "fingerprint": "..."}
    {"kind": "trial", "index": 3, "attempt": 0, "seed": 1234,
     "sha256": "...", "result": "<base64 pickle>"}

Integrity rules:

* the header must match the sweep being resumed (label, master seed,
  trial count) — resuming a *different* sweep raises
  :class:`JournalMismatch` instead of silently mixing results;
* each trial line carries the SHA-256 of its pickled result; a line
  that fails any integrity check — torn tail (the classic artefact of
  dying mid-``write``), digest mismatch, undecodable pickle — is
  discarded *along with everything after it* (appends are ordered, so
  later lines are suspect too); those trials simply rerun;
* the recorded seed must equal ``derive_seed(master, index, label,
  attempt)`` for the recorded attempt, which catches journals whose
  parameters were re-derived differently.

Results are pickled because trial outcomes are arbitrary Python
objects (attributions, dataclasses, sets); the digest check means a
corrupted journal degrades to "rerun that trial", never to silently
wrong data.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.harness.sweep import derive_seed

JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file cannot be used at all (bad header syntax...)."""


class JournalMismatch(JournalError):
    """The journal belongs to a different sweep than the one resuming."""


def _fingerprint(label: str, master_seed: int, trial_count: int) -> str:
    material = f"{label}:{master_seed}:{trial_count}".encode()
    return hashlib.sha256(material).hexdigest()[:16]


class SweepJournal:
    """Append-only journal of completed sweep trials.

    Use through :func:`repro.harness.resilience.run_resilient_sweep`
    (``journal=path``); direct use::

        journal = SweepJournal(path)
        done = journal.open(label="aes", master_seed=7, trial_count=4)
        ...                       # done: {index: (attempt, result)}
        journal.record(index, attempt, seed, result)
        journal.close()
    """

    def __init__(self, path, *, atomic: bool = False) -> None:
        self.path = Path(path)
        self._fh = None
        self._label = ""
        self._master_seed = 0
        self._trial_count = 0
        #: With ``atomic=True`` every record is appended with a single
        #: ``os.write`` on the O_APPEND descriptor, so multiple
        #: processes/threads sharing one journal (the service's
        #: sharded cell workers) never interleave bytes mid-line.
        self._atomic = atomic
        #: Trials dropped at load time for failing integrity checks.
        self.discarded = 0

    # --- lifecycle --------------------------------------------------------

    def open(self, label: str, master_seed: int,
             trial_count: int) -> Dict[int, Tuple[int, Any]]:
        """Open (creating if needed) and return completed trials as
        ``{index: (attempt, result)}``."""
        self._label = label
        self._master_seed = master_seed
        self._trial_count = trial_count
        completed: Dict[int, Tuple[int, Any]] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            completed = self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._append({
                "kind": "header",
                "version": JOURNAL_VERSION,
                "label": label,
                "master_seed": master_seed,
                "trial_count": trial_count,
                "fingerprint": _fingerprint(label, master_seed,
                                            trial_count),
            })
        return completed

    def bind(self, label: str, master_seed: int,
             trial_count: int) -> "SweepJournal":
        """Set the sweep identity without opening the file for
        append — for read-only consumers (:meth:`peek` pollers) that
        must never write a header."""
        self._label = label
        self._master_seed = master_seed
        self._trial_count = trial_count
        return self

    def peek(self) -> Dict[int, Tuple[int, Any]]:
        """Completed trials currently on disk, re-read fresh.

        Requires a prior :meth:`open` or :meth:`bind` (the integrity
        checks need the sweep identity).  Safe while other processes
        are appending: a torn tail degrades to "not completed yet"
        exactly as on resume.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return {}
        return self._load()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # --- writing ----------------------------------------------------------

    def record(self, index: int, attempt: int, seed: int,
               result: Any) -> None:
        """Journal one completed trial (flushed + fsynced so a later
        crash cannot lose it)."""
        if self._fh is None:
            raise JournalError("journal is not open")
        payload = pickle.dumps(result,
                               protocol=pickle.HIGHEST_PROTOCOL)
        self._append({
            "kind": "trial",
            "index": index,
            "attempt": attempt,
            "seed": seed,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "result": base64.b64encode(payload).decode("ascii"),
        })

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        if self._atomic:
            # One os.write per record on the O_APPEND descriptor:
            # concurrent appenders cannot interleave within a line.
            os.write(self._fh.fileno(), line.encode("utf-8"))
        else:
            self._fh.write(line)
            self._fh.flush()
        os.fsync(self._fh.fileno())

    # --- loading ----------------------------------------------------------

    def _load(self) -> Dict[int, Tuple[int, Any]]:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"{self.path}: unreadable journal header") from exc
        if header.get("kind") != "header":
            raise JournalError(f"{self.path}: first line is not a header")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalMismatch(
                f"{self.path}: journal version "
                f"{header.get('version')!r} != {JOURNAL_VERSION}")
        expect = _fingerprint(self._label, self._master_seed,
                              self._trial_count)
        if header.get("fingerprint") != expect:
            raise JournalMismatch(
                f"{self.path}: journal belongs to sweep "
                f"label={header.get('label')!r} "
                f"master_seed={header.get('master_seed')} "
                f"trial_count={header.get('trial_count')}, not to "
                f"label={self._label!r} master_seed={self._master_seed} "
                f"trial_count={self._trial_count}")
        completed: Dict[int, Tuple[int, Any]] = {}
        for line in lines[1:]:
            record = self._decode(line)
            if record is None:
                # Torn or corrupt line: everything after it is suspect
                # (appends are ordered), so stop — those trials rerun.
                break
            index, attempt, result = record
            completed[index] = (attempt, result)
        return completed

    def _decode(self, line: str
                ) -> Optional[Tuple[int, int, Any]]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if record.get("kind") != "trial":
            return None
        try:
            index = record["index"]
            attempt = record["attempt"]
            seed = record["seed"]
            payload = base64.b64decode(record["result"])
            if hashlib.sha256(payload).hexdigest() != record["sha256"]:
                self.discarded += 1
                return None
            if not (0 <= index < self._trial_count):
                self.discarded += 1
                return None
            if derive_seed(self._master_seed, index, self._label,
                           attempt) != seed:
                self.discarded += 1
                return None
            return index, attempt, pickle.loads(payload)
        except (KeyError, TypeError, ValueError, pickle.PickleError):
            self.discarded += 1
            return None


__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalMismatch",
    "SweepJournal",
]
