"""Deterministic parallel sweeps over seeded simulation trials.

A *sweep* is a list of trial parameter sets, each run in its own
simulated machine with a seed derived deterministically from
``(master_seed, label, trial index)``.  Because trial seeds depend on
nothing else, and results are merged in trial order, a sweep's outcome
is a pure function of its inputs — identical for 1 worker or N.

Typical use::

    def trial(params, seed):            # top-level, picklable
        machine = build_machine(seed=seed, **params)
        ...
        return measurements

    sweep = run_sweep(trial, param_grid, master_seed=7, workers=8)
    merged = merge_ordered(sweep.results(), combine)
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.harness.pool import run_indexed

#: A trial callable: ``fn(params, seed) -> result``.
TrialFn = Callable[[Any, int], Any]


def derive_seed(master_seed: int, index: int, label: str = "",
                attempt: int = 0) -> int:
    """Derive a 64-bit trial seed from the sweep's master seed.

    SHA-256 over ``master:label:index`` — stable across processes and
    Python versions (unlike ``hash``), and statistically independent
    across indices, so trials never share RNG streams no matter how
    the sweep is partitioned across workers.

    *attempt* extends the lineage for the fault-tolerant layer
    (:mod:`repro.harness.resilience`): retry *k* of a trial runs with
    ``derive_seed(master, index, label, attempt=k)``, so retries get
    fresh, independent randomness while staying deterministic
    functions of the sweep inputs alone.  ``attempt=0`` hashes the
    historical material, so first-attempt seeds are bit-identical to
    the pre-resilience harness.
    """
    if attempt:
        material = f"{master_seed}:{label}:{index}:{attempt}".encode()
    else:
        material = f"{master_seed}:{label}:{index}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Trial:
    """One scheduled trial of a sweep."""

    index: int
    seed: int
    params: Any


@dataclass
class SweepResult:
    """All trials of one sweep with their results, in trial order."""

    label: str
    master_seed: int
    trials: List[Trial]
    outcomes: List[Any]

    def results(self) -> List[Any]:
        return list(self.outcomes)

    def __iter__(self):
        return iter(zip(self.trials, self.outcomes))

    def __len__(self) -> int:
        return len(self.trials)


def _run_trial(fn: TrialFn, trial: Trial):
    return fn(trial.params, trial.seed)


def run_batched(trial_fn: TrialFn,
                trials: Sequence[Trial]) -> List[Any]:
    """Run *trials* as lanes of one batch fleet, in trial order.

    *trial_fn* must carry a ``fleet_plan`` attribute (see
    :class:`repro.batch.FleetTrial`).  A lane that errors raises here,
    first trial in order — the same exception an inline scalar sweep
    would have raised.
    """
    plan = getattr(trial_fn, "fleet_plan", None)
    if plan is None:
        raise ValueError(
            "backend='batch' needs a trial function that carries a "
            "fleet_plan attribute (see repro.batch.FleetTrial); "
            f"{trial_fn!r} does not")
    if not trials:
        return []
    from repro.batch.fleet import MachineFleet
    fleet = MachineFleet(plan, [(t.seed, t.params) for t in trials])
    results = []
    for outcome in fleet.run():
        if outcome.error is not None:
            raise outcome.error
        results.append(outcome.result)
    return results


def run_sweep(trial_fn: TrialFn, params: Sequence[Any], *,
              master_seed: int = 0, workers: Optional[int] = None,
              label: str = "", backend: str = "scalar") -> SweepResult:
    """Run ``trial_fn(params[i], seed_i)`` for every parameter set.

    *trial_fn* must be a top-level (picklable) callable.  ``workers=1``
    runs inline; ``workers=None`` uses every allowed core (or
    ``REPRO_WORKERS``).  Results land in trial order regardless of
    worker scheduling.

    ``backend`` selects the execution engine: ``"scalar"`` (default)
    runs one machine per trial, in-process or across a process pool;
    ``"batch"`` runs all trials as lanes of one
    :class:`~repro.batch.fleet.MachineFleet` in this process, which
    requires *trial_fn* to carry a ``fleet_plan`` (see
    :class:`repro.batch.FleetTrial`) and produces bit-identical
    results lane by lane.
    """
    if backend not in ("scalar", "batch"):
        raise ValueError(f"unknown sweep backend {backend!r}; "
                         f"expected 'scalar' or 'batch'")
    trials = [Trial(index=i, seed=derive_seed(master_seed, i, label),
                    params=p)
              for i, p in enumerate(params)]
    if backend == "batch":
        outcomes = run_batched(trial_fn, trials)
    else:
        outcomes = run_indexed(functools.partial(_run_trial, trial_fn),
                               trials, workers=workers)
    return SweepResult(label=label, master_seed=master_seed,
                       trials=trials, outcomes=outcomes)


def merge_ordered(results: Sequence[Any],
                  combine: Callable[[Any, Any], Any],
                  initial: Any = None) -> Any:
    """Left-fold *combine* over results in trial order.

    For commutative-associative combines (set intersection, counter
    sums) the outcome is order-independent by algebra; for anything
    else, trial order makes it reproducible anyway.
    """
    items = list(results)
    if initial is None:
        if not items:
            raise ValueError("merge_ordered of empty results needs an "
                             "initial value")
        acc, rest = items[0], items[1:]
    else:
        acc, rest = initial, items
    for item in rest:
        acc = combine(acc, item)
    return acc
