"""Pluggable trial execution backends.

Historically :func:`repro.harness.run_resilient_sweep` hard-coded
three dispatch paths — an in-process inline loop, a supervised
multiprocess pool with a watchdog, and a lockstep batch-fleet
pre-pass.  This module puts all three behind one small interface so
new execution substrates (a job service shard, a remote worker, a
fleet-per-worker hybrid) plug in without touching the sweep driver:

* :class:`ExecutionRequest` — everything a backend needs to resolve a
  set of trials: the trial function, the *todo* list (absolute trial
  indices, so seed lineage survives arbitrary sharding), the
  :class:`~repro.harness.resilience.FaultPolicy`, the journal, and
  the shared ``outcomes``/``reports`` dictionaries to fill in;
* :class:`ExecutionBackend` — ``validate(trial_fn)`` +
  ``execute(request)``;
* the registry — :func:`register_backend`, :func:`resolve_backend`,
  :func:`backend_names`.

Built-in backends:

========  ==========================================================
name      behaviour
========  ==========================================================
inline    every attempt runs in this process (no pickling, no
          watchdog) — the reference execution
pool      every attempt runs in its own supervised worker process
          (watchdog timeouts, crash containment, chaos injection)
scalar    auto: ``pool`` when chaos, a watchdog timeout or >1 worker
          asks for process isolation, else ``inline``
batch     lockstep :class:`~repro.batch.fleet.MachineFleet` pre-pass
          over the todo list, then ``scalar`` for the lanes the
          fleet could not complete
========  ==========================================================

Every backend honours the same contract: a resolved trial lands in
``request.outcomes[index]`` / ``request.reports[index]`` and (when a
journal is attached) is journalled exactly once, so results are
bit-identical across backends — proven by
``tests/harness/test_backends.py``.
"""

from __future__ import annotations

import abc
import hashlib
import heapq
import pickle
import time
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _connection_wait
from typing import (
    Any,
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.harness.journal import SweepJournal
from repro.harness.pool import _mp_context
from repro.harness.resilience import (
    SKIPPED,
    FaultPolicy,
    SweepFailure,
    TrialAttempt,
    TrialReport,
)
from repro.harness.sweep import Trial, TrialFn, derive_seed


@dataclass
class ExecutionRequest:
    """One batch of trials for a backend to resolve.

    ``todo`` carries :class:`~repro.harness.sweep.Trial` objects with
    *absolute* sweep indices: retry seeds derive from
    ``(master_seed, trial.index, label, attempt)``, so a backend
    handed any subset of a sweep (a service shard, the tail after a
    journal resume) produces exactly the results the full sweep
    would.  Backends fill ``outcomes``/``reports`` keyed by those
    indices and journal each success at most once.
    """

    trial_fn: TrialFn
    todo: Sequence[Trial]
    policy: FaultPolicy
    master_seed: int = 0
    label: str = ""
    #: Parallelism hint; backends may clamp it to ``len(todo)``.
    workers: int = 1
    #: Optional :class:`~repro.harness.chaos.ChaosPlan` (process
    #: backends only).
    chaos: Any = None
    journal: Optional[SweepJournal] = None
    outcomes: Dict[int, Any] = field(default_factory=dict)
    reports: Dict[int, TrialReport] = field(default_factory=dict)
    #: ``time.perf_counter()`` origin for attempt timestamps; filled
    #: on first use when left at ``None``.
    t0: Optional[float] = None

    def clock_origin(self) -> float:
        """The request's perf-counter origin (set on first call)."""
        if self.t0 is None:
            self.t0 = time.perf_counter()
        return self.t0


class ExecutionBackend(abc.ABC):
    """One way of turning a todo list into outcomes."""

    #: Registry name (``run_resilient_sweep(backend=<name>)``).
    name: ClassVar[str] = ""

    def validate(self, trial_fn: TrialFn) -> None:
        """Raise ``ValueError`` if *trial_fn* cannot run here."""

    @abc.abstractmethod
    def execute(self, request: ExecutionRequest) -> None:
        """Resolve every trial in ``request.todo``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# --- worker side ----------------------------------------------------------


def _attempt_worker(fn, params, seed, chaos, index, attempt, conn):
    """Run one attempt in a worker process and ship the result with an
    integrity digest.  Chaos hooks run here — inside the blast radius
    the supervisor is designed to contain."""
    try:
        if chaos is not None:
            chaos.before(index, attempt)
        result = fn(params, seed)
        payload = pickle.dumps(result,
                               protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        if chaos is not None:
            payload = chaos.mangle(index, attempt, payload)
        conn.send_bytes(pickle.dumps(("ok", digest, payload)))
    except BaseException as exc:  # noqa: BLE001 — must report, not die
        try:
            conn.send_bytes(pickle.dumps(
                ("error", f"{type(exc).__name__}: {exc}")))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


# --- supervisor (pool engine) ---------------------------------------------


@dataclass
class _InFlight:
    trial: Trial
    attempt: int
    seed: int
    process: Any
    conn: Any
    started: float       # seconds since sweep start
    deadline: Optional[float]


class _TrialState:
    __slots__ = ("trial", "attempts")

    def __init__(self, trial: Trial):
        self.trial = trial
        self.attempts: List[TrialAttempt] = []


class _Supervisor:
    """Bounded-parallelism process supervisor with a watchdog."""

    def __init__(self, trial_fn: TrialFn, todo: Sequence[Trial], *,
                 policy: FaultPolicy, master_seed: int, label: str,
                 workers: int, chaos: Any,
                 journal: Optional[SweepJournal],
                 outcomes: Dict[int, Any],
                 reports: Dict[int, TrialReport],
                 t0: float):
        self.trial_fn = trial_fn
        self.policy = policy
        self.master_seed = master_seed
        self.label = label
        self.workers = max(workers, 1)
        self.chaos = chaos
        self.journal = journal
        self.outcomes = outcomes
        self.reports = reports
        self.t0 = t0
        self.ctx = _mp_context()
        self.states = {t.index: _TrialState(t) for t in todo}
        #: (ready_at, tie-break, trial, attempt) — backoff scheduling.
        self._pending: List[Tuple[float, int, Trial, int]] = []
        self._tick = 0
        for trial in todo:
            self._push(trial, attempt=0, ready_at=0.0)
        self.inflight: Dict[Any, _InFlight] = {}

    # --- time -------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self.t0

    # --- scheduling -------------------------------------------------------

    def _push(self, trial: Trial, attempt: int,
              ready_at: float) -> None:
        self._tick += 1
        heapq.heappush(self._pending,
                       (ready_at, self._tick, trial, attempt))

    def _seed_for(self, trial: Trial, attempt: int) -> int:
        if attempt == 0:
            return trial.seed
        return derive_seed(self.master_seed, trial.index, self.label,
                           attempt)

    def _spawn(self, trial: Trial, attempt: int) -> None:
        seed = self._seed_for(trial, attempt)
        recv_conn, send_conn = self.ctx.Pipe(duplex=False)
        process = self.ctx.Process(
            target=_attempt_worker,
            args=(self.trial_fn, trial.params, seed, self.chaos,
                  trial.index, attempt, send_conn),
            daemon=True)
        process.start()
        # Close the parent's copy of the write end: the child dying is
        # then guaranteed to surface as EOF on recv_conn.
        send_conn.close()
        now = self._now()
        deadline = (None if self.policy.timeout is None
                    else now + self.policy.timeout)
        self.inflight[recv_conn] = _InFlight(
            trial=trial, attempt=attempt, seed=seed, process=process,
            conn=recv_conn, started=now, deadline=deadline)

    # --- reaping ----------------------------------------------------------

    def _dispose(self, flight: _InFlight, kill: bool = False) -> None:
        if kill:
            flight.process.terminate()
            flight.process.join(timeout=0.5)
            if flight.process.is_alive():
                flight.process.kill()
        flight.process.join(timeout=10)
        try:
            flight.conn.close()
        except Exception:
            pass

    def _reap_timeout(self, flight: _InFlight) -> None:
        self.inflight.pop(flight.conn, None)
        self._dispose(flight, kill=True)
        self._failure(flight, "timeout",
                      f"attempt exceeded the "
                      f"{self.policy.timeout}s watchdog deadline")

    # --- outcome bookkeeping ----------------------------------------------

    def _attempt_record(self, flight: _InFlight,
                        outcome: str, error: str) -> TrialAttempt:
        return TrialAttempt(
            attempt=flight.attempt, outcome=outcome, seed=flight.seed,
            started=flight.started,
            duration=max(self._now() - flight.started, 0.0),
            error=error)

    def _success(self, flight: _InFlight, result: Any) -> None:
        state = self.states[flight.trial.index]
        state.attempts.append(
            self._attempt_record(flight, "ok", ""))
        self.outcomes[flight.trial.index] = result
        self.reports[flight.trial.index] = TrialReport(
            index=flight.trial.index, attempts=state.attempts,
            resolution="ok")
        if self.journal is not None:
            self.journal.record(flight.trial.index, flight.attempt,
                                flight.seed, result)

    def _failure(self, flight: _InFlight, outcome: str,
                 error: str) -> None:
        # The flight is already out of self.inflight by the time any
        # failure is recorded.
        state = self.states[flight.trial.index]
        state.attempts.append(
            self._attempt_record(flight, outcome, error))
        next_attempt = flight.attempt + 1
        if next_attempt < self.policy.max_attempts:
            self._push(flight.trial, next_attempt,
                       self._now() + self.policy.backoff(next_attempt))
            return
        self._exhausted(flight.trial, state)

    def _exhausted(self, trial: Trial, state: _TrialState) -> None:
        policy = self.policy
        if policy.on_exhausted == "raise":
            self.reports[trial.index] = TrialReport(
                index=trial.index, attempts=state.attempts,
                resolution="failed")
            self._shutdown()
            raise SweepFailure(trial.index, state.attempts)
        if policy.on_exhausted == "skip":
            self.outcomes[trial.index] = SKIPPED
            resolution = "skipped"
        else:
            self.outcomes[trial.index] = policy.default
            resolution = "defaulted"
        self.reports[trial.index] = TrialReport(
            index=trial.index, attempts=state.attempts,
            resolution=resolution)

    def _shutdown(self) -> None:
        """Kill and reap every in-flight worker (abort path)."""
        for flight in list(self.inflight.values()):
            self._dispose(flight, kill=True)
        self.inflight.clear()

    # --- main loop --------------------------------------------------------

    def run(self) -> None:
        try:
            self._loop()
        except BaseException:
            self._shutdown()
            raise

    def _loop(self) -> None:
        while self._pending or self.inflight:
            now = self._now()
            while (self._pending
                   and len(self.inflight) < self.workers
                   and self._pending[0][0] <= now):
                _ready, _tick, trial, attempt = \
                    heapq.heappop(self._pending)
                self._spawn(trial, attempt)
            if not self.inflight:
                # Everything runnable is in backoff: sleep it off.
                wait_for = max(self._pending[0][0] - self._now(), 0.0)
                if wait_for:
                    time.sleep(min(wait_for, 0.25))
                continue
            timeout = self._wait_budget()
            ready = _connection_wait(list(self.inflight.keys()),
                                     timeout)
            for conn in ready:
                flight = self.inflight.pop(conn, None)
                if flight is not None:
                    self._reap(flight)
            now = self._now()
            for flight in [f for f in self.inflight.values()
                           if f.deadline is not None
                           and f.deadline <= now]:
                self._reap_timeout(flight)

    def _reap(self, flight: _InFlight) -> None:
        """The worker's pipe became readable: result, error or EOF.
        *flight* is already out of ``self.inflight``."""
        try:
            blob = flight.conn.recv_bytes()
        except (EOFError, OSError):
            self._dispose(flight)
            code = flight.process.exitcode
            self._failure(flight, "crash",
                          f"worker died without a result "
                          f"(exit code {code})")
            return
        self._dispose(flight)
        try:
            message = pickle.loads(blob)
        except Exception as exc:
            self._failure(flight, "corrupt",
                          f"undecodable worker envelope: {exc}")
            return
        if message[0] == "error":
            self._failure(flight, "exception", message[1])
            return
        _tag, digest, payload = message
        if hashlib.sha256(payload).hexdigest() != digest:
            self._failure(flight, "corrupt",
                          "result payload failed its integrity digest")
            return
        try:
            result = pickle.loads(payload)
        except Exception as exc:
            self._failure(flight, "corrupt",
                          f"result payload failed to unpickle: {exc}")
            return
        if self.policy.verify is not None \
                and not self.policy.verify(result):
            self._failure(flight, "rejected",
                          "verify hook rejected the result")
            return
        self._success(flight, result)

    def _wait_budget(self) -> float:
        """Seconds to block in connection-wait: until the earliest
        watchdog deadline or backoff expiry, capped for liveness."""
        now = self._now()
        horizon = 0.25
        deadlines = [f.deadline for f in self.inflight.values()
                     if f.deadline is not None]
        if deadlines:
            horizon = min(horizon, max(min(deadlines) - now, 0.0))
        if self._pending and len(self.inflight) < self.workers:
            horizon = min(horizon,
                          max(self._pending[0][0] - now, 0.0))
        return max(horizon, 0.0)


# --- inline engine --------------------------------------------------------


def _run_inline(trial_fn: TrialFn, todo: Sequence[Trial], *,
                policy: FaultPolicy, master_seed: int, label: str,
                journal: Optional[SweepJournal],
                outcomes: Dict[int, Any],
                reports: Dict[int, TrialReport], t0: float) -> None:
    """Single-worker, no-watchdog path: runs attempts in-process (no
    pickling), which is the reference execution the supervised path
    must reproduce."""
    for trial in todo:
        attempts: List[TrialAttempt] = []
        resolved = False
        for attempt in range(policy.max_attempts):
            if attempt:
                delay = policy.backoff(attempt)
                if delay:
                    time.sleep(delay)
            seed = (trial.seed if attempt == 0
                    else derive_seed(master_seed, trial.index, label,
                                     attempt))
            started = time.perf_counter() - t0
            try:
                result = trial_fn(trial.params, seed)
                duration = time.perf_counter() - t0 - started
                if policy.verify is not None \
                        and not policy.verify(result):
                    attempts.append(TrialAttempt(
                        attempt=attempt, outcome="rejected",
                        seed=seed, started=started, duration=duration,
                        error="verify hook rejected the result"))
                    continue
                attempts.append(TrialAttempt(
                    attempt=attempt, outcome="ok", seed=seed,
                    started=started, duration=duration))
                outcomes[trial.index] = result
                reports[trial.index] = TrialReport(
                    index=trial.index, attempts=attempts,
                    resolution="ok")
                if journal is not None:
                    journal.record(trial.index, attempt, seed, result)
                resolved = True
                break
            except Exception as exc:
                duration = time.perf_counter() - t0 - started
                attempts.append(TrialAttempt(
                    attempt=attempt, outcome="exception", seed=seed,
                    started=started, duration=duration,
                    error=f"{type(exc).__name__}: {exc}"))
        if resolved:
            continue
        if policy.on_exhausted == "raise":
            reports[trial.index] = TrialReport(
                index=trial.index, attempts=attempts,
                resolution="failed")
            raise SweepFailure(trial.index, attempts)
        if policy.on_exhausted == "skip":
            outcomes[trial.index] = SKIPPED
            resolution = "skipped"
        else:
            outcomes[trial.index] = policy.default
            resolution = "defaulted"
        reports[trial.index] = TrialReport(
            index=trial.index, attempts=attempts,
            resolution=resolution)


# --- batch-fleet pre-pass -------------------------------------------------


def _fleet_prepass(trial_fn: TrialFn, todo: Sequence[Trial], *,
                   journal: Optional[SweepJournal],
                   outcomes: Dict[int, Any],
                   reports: Dict[int, TrialReport],
                   t0: float) -> List[Trial]:
    """Resolve what the batch fleet can; return the trials that still
    need the scalar retry ladder.

    Every lane that completes becomes an attempt-0 "ok" resolution
    (journalled like any first-attempt success); a lane that errors is
    handed to the ladder *without* recording an attempt, so its retry
    budget and seed lineage are untouched — the ladder reruns it
    scalar from attempt 0 exactly as if the fleet had never existed.
    Any failure of the fleet machinery itself degrades silently to the
    full scalar path: resilience never trades fault tolerance for
    throughput.
    """
    started = time.perf_counter() - t0
    try:
        from repro.batch.fleet import MachineFleet
        plan = trial_fn.fleet_plan  # type: ignore[attr-defined]
        lane_outcomes = MachineFleet(
            plan, [(t.seed, t.params) for t in todo]).run()
    except Exception:
        return list(todo)
    duration = max(time.perf_counter() - t0 - started, 0.0)
    remaining: List[Trial] = []
    for trial, lane in zip(todo, lane_outcomes):
        if lane.error is not None:
            remaining.append(trial)
            continue
        outcomes[trial.index] = lane.result
        reports[trial.index] = TrialReport(
            index=trial.index,
            attempts=[TrialAttempt(attempt=0, outcome="ok",
                                   seed=trial.seed, started=started,
                                   duration=duration)],
            resolution="ok")
        if journal is not None:
            journal.record(trial.index, 0, trial.seed, lane.result)
    return remaining


# --- the backends ---------------------------------------------------------


class InlineBackend(ExecutionBackend):
    """Every attempt runs in this process — the reference execution."""

    name = "inline"

    def execute(self, request: ExecutionRequest) -> None:
        if request.chaos is not None:
            raise ValueError(
                "chaos injection needs process isolation; use the "
                "'pool' (or auto 'scalar') backend")
        _run_inline(request.trial_fn, request.todo,
                    policy=request.policy,
                    master_seed=request.master_seed,
                    label=request.label, journal=request.journal,
                    outcomes=request.outcomes,
                    reports=request.reports,
                    t0=request.clock_origin())


class PoolBackend(ExecutionBackend):
    """Every attempt runs in its own supervised worker process."""

    name = "pool"

    def execute(self, request: ExecutionRequest) -> None:
        if not request.todo:
            return
        _Supervisor(request.trial_fn, request.todo,
                    policy=request.policy,
                    master_seed=request.master_seed,
                    label=request.label,
                    workers=min(max(request.workers, 1),
                                len(request.todo)),
                    chaos=request.chaos, journal=request.journal,
                    outcomes=request.outcomes,
                    reports=request.reports,
                    t0=request.clock_origin()).run()


class ScalarBackend(ExecutionBackend):
    """Auto-select: process isolation only when something asks for it
    (chaos, a watchdog timeout, or more than one worker)."""

    name = "scalar"

    def execute(self, request: ExecutionRequest) -> None:
        supervised = (request.chaos is not None
                      or request.policy.timeout is not None
                      or min(request.workers,
                             max(len(request.todo), 1)) > 1)
        engine: ExecutionBackend = (_POOL if supervised else _INLINE)
        engine.execute(request)


class BatchBackend(ExecutionBackend):
    """Lockstep fleet pre-pass, scalar ladder for what remains.

    Requires a trial function carrying a ``fleet_plan`` (see
    :class:`repro.batch.FleetTrial`).  The pre-pass is skipped under
    chaos injection — chaos faults target per-attempt workers, which
    the fleet would bypass.  ``request.workers`` is clamped to the
    post-pre-pass remainder so accounting matches what actually ran.
    """

    name = "batch"

    def validate(self, trial_fn: TrialFn) -> None:
        if getattr(trial_fn, "fleet_plan", None) is None:
            raise ValueError(
                "backend='batch' needs a trial function that carries "
                "a fleet_plan attribute (see repro.batch.FleetTrial); "
                f"{trial_fn!r} does not")

    def execute(self, request: ExecutionRequest) -> None:
        todo = list(request.todo)
        t0 = request.clock_origin()
        if todo and request.chaos is None:
            todo = _fleet_prepass(request.trial_fn, todo,
                                  journal=request.journal,
                                  outcomes=request.outcomes,
                                  reports=request.reports, t0=t0)
            request.workers = min(request.workers,
                                  max(len(todo), 1))
        if todo:
            _SCALAR.execute(replace(request, todo=todo))


_INLINE = InlineBackend()
_POOL = PoolBackend()
_SCALAR = ScalarBackend()
_BATCH = BatchBackend()

#: Name → backend instance.  Backends are stateless; one shared
#: instance per name is safe across sweeps and threads.
BACKENDS: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add *backend* to the registry (last registration wins)."""
    if not backend.name:
        raise ValueError("backend needs a non-empty .name")
    BACKENDS[backend.name] = backend
    return backend


for _backend in (_INLINE, _POOL, _SCALAR, _BATCH):
    register_backend(_backend)


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


def resolve_backend(backend: Any) -> ExecutionBackend:
    """Map a name (or an :class:`ExecutionBackend` instance) to the
    backend that will run the sweep; unknown names raise
    ``ValueError`` listing what is registered."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown sweep backend {backend!r}; expected one of "
            f"{', '.join(backend_names())} or an ExecutionBackend "
            f"instance") from None


__all__ = [
    "BACKENDS",
    "BatchBackend",
    "ExecutionBackend",
    "ExecutionRequest",
    "InlineBackend",
    "PoolBackend",
    "ScalarBackend",
    "backend_names",
    "register_backend",
    "resolve_backend",
]
