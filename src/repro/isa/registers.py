"""Register file specification for the micro-ISA.

The simulator's ISA is a small RISC-style register machine with two
register classes:

* sixteen 64-bit integer registers ``r0`` .. ``r15``
* sixteen floating-point registers ``f0`` .. ``f15``

Registers are identified by their lowercase string name throughout the
code base.  This module centralises validation so the assembler, the
instruction constructors and the core all agree on what a register is.
"""

from __future__ import annotations

NUM_INT_REGS = 16
NUM_FP_REGS = 16

INT_REGS = tuple(f"r{i}" for i in range(NUM_INT_REGS))
FP_REGS = tuple(f"f{i}" for i in range(NUM_FP_REGS))
ALL_REGS = INT_REGS + FP_REGS

_INT_SET = frozenset(INT_REGS)
_FP_SET = frozenset(FP_REGS)


def is_int_reg(name: str) -> bool:
    """Return ``True`` when *name* is a valid integer register."""
    return name in _INT_SET


def is_fp_reg(name: str) -> bool:
    """Return ``True`` when *name* is a valid floating-point register."""
    return name in _FP_SET


def is_reg(name: str) -> bool:
    """Return ``True`` when *name* is any valid register."""
    return name in _INT_SET or name in _FP_SET


def check_int_reg(name: str) -> str:
    """Validate *name* as an integer register and return it."""
    if not is_int_reg(name):
        raise ValueError(f"not an integer register: {name!r}")
    return name


def check_fp_reg(name: str) -> str:
    """Validate *name* as a floating-point register and return it."""
    if not is_fp_reg(name):
        raise ValueError(f"not a floating-point register: {name!r}")
    return name


def check_reg(name: str) -> str:
    """Validate *name* as a register of either class and return it."""
    if not is_reg(name):
        raise ValueError(f"not a register: {name!r}")
    return name


def fresh_int_regfile() -> dict:
    """Return a new integer register file, all registers zeroed."""
    return {name: 0 for name in INT_REGS}


def fresh_fp_regfile() -> dict:
    """Return a new floating-point register file, all registers zeroed."""
    return {name: 0.0 for name in FP_REGS}
