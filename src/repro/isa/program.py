"""Programs: ordered instruction sequences with labels.

A :class:`Program` is what the kernel loads into a process' code segment
and what a hardware context fetches from.  Instructions occupy
:data:`~repro.isa.instructions.INSTRUCTION_SIZE` bytes of virtual code
space each, so instruction index *i* of a program loaded at ``code_base``
lives at ``code_base + 4 * i``.

:class:`ProgramBuilder` offers a fluent API used by the victim-program
generators; the text assembler in :mod:`repro.isa.assembler` produces the
same :class:`Program` objects from source text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa import instructions as ins
from repro.isa.instructions import Instruction, INSTRUCTION_SIZE


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, duplicates...)."""


@dataclass
class Program:
    """An immutable, label-resolved instruction sequence."""

    name: str
    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ProgramError(
                    f"label {label!r} points outside program: {index}")
        self._validate_targets()

    def _validate_targets(self):
        for i, instr in enumerate(self.instructions):
            if instr.target is not None and instr.target not in self.labels:
                raise ProgramError(
                    f"instruction {i} ({instr}) references unknown label "
                    f"{instr.target!r}")

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def resolve(self, label: str) -> int:
        """Return the instruction index of *label*."""
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError(f"unknown label: {label!r}") from None

    def target_index(self, instr: Instruction) -> int:
        """Resolve the branch target of *instr* to an instruction index."""
        if instr.target is None:
            raise ProgramError(f"instruction has no target: {instr}")
        return self.resolve(instr.target)

    def label_at(self, index: int) -> Optional[str]:
        """Return a label attached to instruction *index*, if any."""
        for label, i in self.labels.items():
            if i == index:
                return label
        return None

    def code_size(self) -> int:
        """Size in bytes of the program's code footprint."""
        return len(self.instructions) * INSTRUCTION_SIZE

    def find(self, comment: str) -> List[int]:
        """Return indices of all instructions annotated with *comment*."""
        return [i for i, instr in enumerate(self.instructions)
                if instr.comment == comment]

    def find_one(self, comment: str) -> int:
        """Return the unique instruction index annotated with *comment*."""
        matches = self.find(comment)
        if len(matches) != 1:
            raise ProgramError(
                f"expected exactly one instruction tagged {comment!r}, "
                f"found {len(matches)}")
        return matches[0]

    def listing(self) -> str:
        """Return a human-readable disassembly listing."""
        index_labels: Dict[int, List[str]] = {}
        for label, i in self.labels.items():
            index_labels.setdefault(i, []).append(label)
        lines = []
        for i, instr in enumerate(self.instructions):
            for label in sorted(index_labels.get(i, ())):
                lines.append(f"{label}:")
            lines.append(f"    {instr}")
        for label in sorted(index_labels.get(len(self.instructions), ())):
            lines.append(f"{label}:")
        return "\n".join(lines)


class ProgramBuilder:
    """Fluent builder for :class:`Program` objects.

    Every instruction-constructor from :mod:`repro.isa.instructions` is
    available as a method; each appends one instruction and returns the
    builder so calls can be chained::

        prog = (ProgramBuilder("demo")
                .li("r1", 40)
                .addi("r1", "r1", 2)
                .halt()
                .build())
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._instructions)

    @property
    def next_index(self) -> int:
        """Index the next appended instruction will receive."""
        return len(self._instructions)

    def label(self, name: str) -> "ProgramBuilder":
        """Attach *name* to the next instruction."""
        if name in self._labels:
            raise ProgramError(f"duplicate label: {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def bind_label(self, name: str, index: int) -> "ProgramBuilder":
        """Attach *name* to an explicit instruction index (used by
        program transformations that splice code)."""
        self._labels[name] = index
        return self

    def emit(self, instr: Instruction) -> "ProgramBuilder":
        """Append a pre-built instruction."""
        self._instructions.append(instr)
        return self

    def extend(self, instrs: Iterable[Instruction]) -> "ProgramBuilder":
        """Append several pre-built instructions."""
        self._instructions.extend(instrs)
        return self

    def build(self) -> Program:
        """Finalise and validate the program."""
        return Program(self.name, tuple(self._instructions),
                       dict(self._labels))

    # The arithmetic/memory/control methods below are thin wrappers over
    # the module-level constructors, generated explicitly (not via
    # metaprogramming) so they are discoverable and type-checkable.

    def li(self, rd, imm, comment=""):
        return self.emit(ins.li(rd, imm, comment))

    def fli(self, fd, imm, comment=""):
        return self.emit(ins.fli(fd, imm, comment))

    def mov(self, rd, rs1, comment=""):
        return self.emit(ins.mov(rd, rs1, comment))

    def fmov(self, fd, fs1, comment=""):
        return self.emit(ins.fmov(fd, fs1, comment))

    def add(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.add(rd, rs1, rs2, comment))

    def sub(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.sub(rd, rs1, rs2, comment))

    def and_(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.and_(rd, rs1, rs2, comment))

    def or_(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.or_(rd, rs1, rs2, comment))

    def xor(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.xor(rd, rs1, rs2, comment))

    def shl(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.shl(rd, rs1, rs2, comment))

    def shr(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.shr(rd, rs1, rs2, comment))

    def mul(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.mul(rd, rs1, rs2, comment))

    def div(self, rd, rs1, rs2, comment=""):
        return self.emit(ins.div(rd, rs1, rs2, comment))

    def addi(self, rd, rs1, imm, comment=""):
        return self.emit(ins.addi(rd, rs1, imm, comment))

    def subi(self, rd, rs1, imm, comment=""):
        return self.emit(ins.subi(rd, rs1, imm, comment))

    def andi(self, rd, rs1, imm, comment=""):
        return self.emit(ins.andi(rd, rs1, imm, comment))

    def ori(self, rd, rs1, imm, comment=""):
        return self.emit(ins.ori(rd, rs1, imm, comment))

    def xori(self, rd, rs1, imm, comment=""):
        return self.emit(ins.xori(rd, rs1, imm, comment))

    def shli(self, rd, rs1, imm, comment=""):
        return self.emit(ins.shli(rd, rs1, imm, comment))

    def shri(self, rd, rs1, imm, comment=""):
        return self.emit(ins.shri(rd, rs1, imm, comment))

    def fadd(self, fd, fs1, fs2, comment=""):
        return self.emit(ins.fadd(fd, fs1, fs2, comment))

    def fsub(self, fd, fs1, fs2, comment=""):
        return self.emit(ins.fsub(fd, fs1, fs2, comment))

    def fmul(self, fd, fs1, fs2, comment=""):
        return self.emit(ins.fmul(fd, fs1, fs2, comment))

    def fdiv(self, fd, fs1, fs2, comment=""):
        return self.emit(ins.fdiv(fd, fs1, fs2, comment))

    def load(self, rd, base, offset=0, width=8, comment=""):
        return self.emit(ins.load(rd, base, offset, width, comment))

    def store(self, base, src, offset=0, width=8, comment=""):
        return self.emit(ins.store(base, src, offset, width, comment))

    def fload(self, fd, base, offset=0, width=8, comment=""):
        return self.emit(ins.fload(fd, base, offset, width, comment))

    def fstore(self, base, src, offset=0, width=8, comment=""):
        return self.emit(ins.fstore(base, src, offset, width, comment))

    def beq(self, rs1, rs2, target, comment=""):
        return self.emit(ins.beq(rs1, rs2, target, comment))

    def bne(self, rs1, rs2, target, comment=""):
        return self.emit(ins.bne(rs1, rs2, target, comment))

    def blt(self, rs1, rs2, target, comment=""):
        return self.emit(ins.blt(rs1, rs2, target, comment))

    def bge(self, rs1, rs2, target, comment=""):
        return self.emit(ins.bge(rs1, rs2, target, comment))

    def jmp(self, target, comment=""):
        return self.emit(ins.jmp(target, comment))

    def halt(self, comment=""):
        return self.emit(ins.halt(comment))

    def nop(self, comment=""):
        return self.emit(ins.nop(comment))

    def rdtsc(self, rd, comment=""):
        return self.emit(ins.rdtsc(rd, comment))

    def rdrand(self, rd, comment=""):
        return self.emit(ins.rdrand(rd, comment))

    def fence(self, comment=""):
        return self.emit(ins.fence(comment))

    def tbegin(self, fallback, comment=""):
        return self.emit(ins.tbegin(fallback, comment))

    def tend(self, comment=""):
        return self.emit(ins.tend(comment))

    def tabort(self, comment=""):
        return self.emit(ins.tabort(comment))
