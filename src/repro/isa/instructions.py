"""Instruction set of the micro-ISA.

The ISA is deliberately small but covers everything the MicroScope
reproduction needs:

* integer ALU operations (including multiply and divide, which bind to
  distinct execution ports so port contention is observable),
* floating-point arithmetic (``fdiv`` models the non-pipelined divider
  and the subnormal-input latency penalty of Andrysco et al.),
* loads and stores of 4- or 8-byte words (the memory instructions that
  serve as replay handles and pivots),
* conditional branches and jumps (control-flow secrets),
* ``rdtsc`` (reads the cycle counter — the Monitor's measurement
  primitive), ``rdrand`` (the non-deterministic instruction targeted by
  the Section 7.2 integrity attack), ``fence``,
* TSX-style transactions (``tbegin``/``tend``/``tabort``) used by the
  Section 7.1 alternative replay handles and the T-SGX defense.

Instructions occupy 4 bytes of virtual code space each, so every
instruction has a well-defined program-counter address.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa import registers

#: Size in bytes of one encoded instruction in the virtual code segment.
INSTRUCTION_SIZE = 4


class Opcode(enum.Enum):
    """All opcodes understood by the core."""

    # Integer ALU
    LI = "li"          # rd <- imm
    MOV = "mov"        # rd <- rs1
    ADD = "add"        # rd <- rs1 + rs2
    SUB = "sub"        # rd <- rs1 - rs2
    AND = "and"        # rd <- rs1 & rs2
    OR = "or"          # rd <- rs1 | rs2
    XOR = "xor"        # rd <- rs1 ^ rs2
    SHL = "shl"        # rd <- rs1 << rs2
    SHR = "shr"        # rd <- rs1 >> rs2
    ADDI = "addi"      # rd <- rs1 + imm
    SUBI = "subi"      # rd <- rs1 - imm
    ANDI = "andi"      # rd <- rs1 & imm
    ORI = "ori"        # rd <- rs1 | imm
    XORI = "xori"      # rd <- rs1 ^ imm
    SHLI = "shli"      # rd <- rs1 << imm
    SHRI = "shri"      # rd <- rs1 >> imm
    MUL = "mul"        # rd <- rs1 * rs2      (multiply port)
    DIV = "div"        # rd <- rs1 // rs2     (non-pipelined divider)

    # Floating point
    FLI = "fli"        # fd <- imm (float literal)
    FMOV = "fmov"      # fd <- fs1
    FADD = "fadd"      # fd <- fs1 + fs2
    FSUB = "fsub"      # fd <- fs1 - fs2
    FMUL = "fmul"      # fd <- fs1 * fs2      (multiply port)
    FDIV = "fdiv"      # fd <- fs1 / fs2      (non-pipelined divider)

    # Memory
    LOAD = "load"      # rd <- mem[rs1 + imm]
    STORE = "store"    # mem[rs1 + imm] <- rs2
    FLOAD = "fload"    # fd <- mem[rs1 + imm]
    FSTORE = "fstore"  # mem[rs1 + imm] <- fs2

    # Control flow
    BEQ = "beq"        # if rs1 == rs2 goto target
    BNE = "bne"        # if rs1 != rs2 goto target
    BLT = "blt"        # if rs1 <  rs2 goto target
    BGE = "bge"        # if rs1 >= rs2 goto target
    JMP = "jmp"        # goto target
    HALT = "halt"      # stop the hardware context

    # Miscellaneous
    NOP = "nop"
    RDTSC = "rdtsc"    # rd <- current cycle count
    RDRAND = "rdrand"  # rd <- hardware random number
    FENCE = "fence"    # serialise: younger instructions wait for retire

    # Transactional memory (TSX-style)
    TBEGIN = "tbegin"  # begin transaction; on abort jump to target
    TEND = "tend"      # commit transaction
    TABORT = "tabort"  # explicitly abort the enclosing transaction


# --- Opcode classification sets -------------------------------------------

THREE_REG_INT = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.SHR, Opcode.MUL, Opcode.DIV,
})
TWO_REG_IMM_INT = frozenset({
    Opcode.ADDI, Opcode.SUBI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SHLI, Opcode.SHRI,
})
THREE_REG_FP = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})
LOADS = frozenset({Opcode.LOAD, Opcode.FLOAD})
STORES = frozenset({Opcode.STORE, Opcode.FSTORE})
MEMORY_OPS = LOADS | STORES
COND_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
BRANCHES = COND_BRANCHES | frozenset({Opcode.JMP})
SERIALIZING = frozenset({Opcode.FENCE})
TRANSACTIONAL = frozenset({Opcode.TBEGIN, Opcode.TEND, Opcode.TABORT})


@dataclass(frozen=True)
class Instruction:
    """One decoded micro-ISA instruction.

    Field usage by class:

    * ALU three-register: ``rd``, ``rs1``, ``rs2``
    * ALU register-immediate: ``rd``, ``rs1``, ``imm``
    * ``li``/``fli``: ``rd``, ``imm``
    * loads: ``rd``, ``rs1`` (base), ``imm`` (offset), ``width``
    * stores: ``rs1`` (base), ``rs2`` (value source), ``imm``, ``width``
    * conditional branches: ``rs1``, ``rs2``, ``target`` (label)
    * ``jmp``/``tbegin``: ``target``
    """

    op: Opcode
    rd: Optional[str] = None
    rs1: Optional[str] = None
    rs2: Optional[str] = None
    imm: Optional[object] = None
    target: Optional[str] = None
    width: int = 8
    #: Free-form annotation, e.g. ``"replay-handle"`` or ``"transmit"``.
    comment: str = field(default="", compare=False)

    def sources(self) -> Tuple[str, ...]:
        """Registers read by this instruction."""
        regs = []
        if self.rs1 is not None:
            regs.append(self.rs1)
        if self.rs2 is not None:
            regs.append(self.rs2)
        return tuple(regs)

    def dest(self) -> Optional[str]:
        """Register written by this instruction, if any."""
        return self.rd

    @property
    def is_load(self) -> bool:
        return self.op in LOADS

    @property
    def is_store(self) -> bool:
        return self.op in STORES

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCHES

    @property
    def is_cond_branch(self) -> bool:
        return self.op in COND_BRANCHES

    def __str__(self) -> str:
        return format_instruction(self)


def _check_width(width: int) -> int:
    if width not in (4, 8):
        raise ValueError(f"memory access width must be 4 or 8, got {width}")
    return width


# --- Constructors -----------------------------------------------------------
#
# Each constructor validates register classes so malformed programs are
# rejected at build time rather than mid-simulation.

def li(rd: str, imm: int, comment: str = "") -> Instruction:
    return Instruction(Opcode.LI, rd=registers.check_int_reg(rd),
                       imm=int(imm), comment=comment)


def fli(fd: str, imm: float, comment: str = "") -> Instruction:
    return Instruction(Opcode.FLI, rd=registers.check_fp_reg(fd),
                       imm=float(imm), comment=comment)


def mov(rd: str, rs1: str, comment: str = "") -> Instruction:
    return Instruction(Opcode.MOV, rd=registers.check_int_reg(rd),
                       rs1=registers.check_int_reg(rs1), comment=comment)


def fmov(fd: str, fs1: str, comment: str = "") -> Instruction:
    return Instruction(Opcode.FMOV, rd=registers.check_fp_reg(fd),
                       rs1=registers.check_fp_reg(fs1), comment=comment)


def _three_reg_int(op: Opcode, rd: str, rs1: str, rs2: str,
                   comment: str) -> Instruction:
    return Instruction(op, rd=registers.check_int_reg(rd),
                       rs1=registers.check_int_reg(rs1),
                       rs2=registers.check_int_reg(rs2), comment=comment)


def add(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.ADD, rd, rs1, rs2, comment)


def sub(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.SUB, rd, rs1, rs2, comment)


def and_(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.AND, rd, rs1, rs2, comment)


def or_(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.OR, rd, rs1, rs2, comment)


def xor(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.XOR, rd, rs1, rs2, comment)


def shl(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.SHL, rd, rs1, rs2, comment)


def shr(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.SHR, rd, rs1, rs2, comment)


def mul(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.MUL, rd, rs1, rs2, comment)


def div(rd, rs1, rs2, comment=""):
    return _three_reg_int(Opcode.DIV, rd, rs1, rs2, comment)


def _reg_imm_int(op: Opcode, rd: str, rs1: str, imm: int,
                 comment: str) -> Instruction:
    return Instruction(op, rd=registers.check_int_reg(rd),
                       rs1=registers.check_int_reg(rs1), imm=int(imm),
                       comment=comment)


def addi(rd, rs1, imm, comment=""):
    return _reg_imm_int(Opcode.ADDI, rd, rs1, imm, comment)


def subi(rd, rs1, imm, comment=""):
    return _reg_imm_int(Opcode.SUBI, rd, rs1, imm, comment)


def andi(rd, rs1, imm, comment=""):
    return _reg_imm_int(Opcode.ANDI, rd, rs1, imm, comment)


def ori(rd, rs1, imm, comment=""):
    return _reg_imm_int(Opcode.ORI, rd, rs1, imm, comment)


def xori(rd, rs1, imm, comment=""):
    return _reg_imm_int(Opcode.XORI, rd, rs1, imm, comment)


def shli(rd, rs1, imm, comment=""):
    return _reg_imm_int(Opcode.SHLI, rd, rs1, imm, comment)


def shri(rd, rs1, imm, comment=""):
    return _reg_imm_int(Opcode.SHRI, rd, rs1, imm, comment)


def _three_reg_fp(op: Opcode, fd: str, fs1: str, fs2: str,
                  comment: str) -> Instruction:
    return Instruction(op, rd=registers.check_fp_reg(fd),
                       rs1=registers.check_fp_reg(fs1),
                       rs2=registers.check_fp_reg(fs2), comment=comment)


def fadd(fd, fs1, fs2, comment=""):
    return _three_reg_fp(Opcode.FADD, fd, fs1, fs2, comment)


def fsub(fd, fs1, fs2, comment=""):
    return _three_reg_fp(Opcode.FSUB, fd, fs1, fs2, comment)


def fmul(fd, fs1, fs2, comment=""):
    return _three_reg_fp(Opcode.FMUL, fd, fs1, fs2, comment)


def fdiv(fd, fs1, fs2, comment=""):
    return _three_reg_fp(Opcode.FDIV, fd, fs1, fs2, comment)


def load(rd: str, base: str, offset: int = 0, width: int = 8,
         comment: str = "") -> Instruction:
    return Instruction(Opcode.LOAD, rd=registers.check_int_reg(rd),
                       rs1=registers.check_int_reg(base), imm=int(offset),
                       width=_check_width(width), comment=comment)


def store(base: str, src: str, offset: int = 0, width: int = 8,
          comment: str = "") -> Instruction:
    return Instruction(Opcode.STORE, rs1=registers.check_int_reg(base),
                       rs2=registers.check_int_reg(src), imm=int(offset),
                       width=_check_width(width), comment=comment)


def fload(fd: str, base: str, offset: int = 0, width: int = 8,
          comment: str = "") -> Instruction:
    return Instruction(Opcode.FLOAD, rd=registers.check_fp_reg(fd),
                       rs1=registers.check_int_reg(base), imm=int(offset),
                       width=_check_width(width), comment=comment)


def fstore(base: str, src: str, offset: int = 0, width: int = 8,
           comment: str = "") -> Instruction:
    return Instruction(Opcode.FSTORE, rs1=registers.check_int_reg(base),
                       rs2=registers.check_fp_reg(src), imm=int(offset),
                       width=_check_width(width), comment=comment)


def _cond_branch(op: Opcode, rs1: str, rs2: str, target: str,
                 comment: str) -> Instruction:
    return Instruction(op, rs1=registers.check_int_reg(rs1),
                       rs2=registers.check_int_reg(rs2), target=str(target),
                       comment=comment)


def beq(rs1, rs2, target, comment=""):
    return _cond_branch(Opcode.BEQ, rs1, rs2, target, comment)


def bne(rs1, rs2, target, comment=""):
    return _cond_branch(Opcode.BNE, rs1, rs2, target, comment)


def blt(rs1, rs2, target, comment=""):
    return _cond_branch(Opcode.BLT, rs1, rs2, target, comment)


def bge(rs1, rs2, target, comment=""):
    return _cond_branch(Opcode.BGE, rs1, rs2, target, comment)


def jmp(target: str, comment: str = "") -> Instruction:
    return Instruction(Opcode.JMP, target=str(target), comment=comment)


def halt(comment: str = "") -> Instruction:
    return Instruction(Opcode.HALT, comment=comment)


def nop(comment: str = "") -> Instruction:
    return Instruction(Opcode.NOP, comment=comment)


def rdtsc(rd: str, comment: str = "") -> Instruction:
    return Instruction(Opcode.RDTSC, rd=registers.check_int_reg(rd),
                       comment=comment)


def rdrand(rd: str, comment: str = "") -> Instruction:
    return Instruction(Opcode.RDRAND, rd=registers.check_int_reg(rd),
                       comment=comment)


def fence(comment: str = "") -> Instruction:
    return Instruction(Opcode.FENCE, comment=comment)


def tbegin(fallback: str, comment: str = "") -> Instruction:
    return Instruction(Opcode.TBEGIN, target=str(fallback), comment=comment)


def tend(comment: str = "") -> Instruction:
    return Instruction(Opcode.TEND, comment=comment)


def tabort(comment: str = "") -> Instruction:
    return Instruction(Opcode.TABORT, comment=comment)


# --- Formatting -------------------------------------------------------------

def _mem_operand(instr: Instruction) -> str:
    """Render ``base + offset`` / ``base - offset`` for memory ops."""
    offset = instr.imm or 0
    sign = "-" if offset < 0 else "+"
    return f"{instr.rs1} {sign} {abs(offset)}"


def format_instruction(instr: Instruction) -> str:
    """Render *instr* in assembler syntax (inverse of the parser)."""
    op = instr.op
    name = op.value
    if op in (Opcode.LI, Opcode.FLI):
        body = f"{name} {instr.rd}, {instr.imm}"
    elif op in (Opcode.MOV, Opcode.FMOV):
        body = f"{name} {instr.rd}, {instr.rs1}"
    elif op in THREE_REG_INT or op in THREE_REG_FP:
        body = f"{name} {instr.rd}, {instr.rs1}, {instr.rs2}"
    elif op in TWO_REG_IMM_INT:
        body = f"{name} {instr.rd}, {instr.rs1}, {instr.imm}"
    elif op in LOADS:
        suffix = ".w" if instr.width == 4 else ""
        body = f"{name}{suffix} {instr.rd}, [{_mem_operand(instr)}]"
    elif op in STORES:
        suffix = ".w" if instr.width == 4 else ""
        body = f"{name}{suffix} [{_mem_operand(instr)}], {instr.rs2}"
    elif op in COND_BRANCHES:
        body = f"{name} {instr.rs1}, {instr.rs2}, {instr.target}"
    elif op in (Opcode.JMP, Opcode.TBEGIN):
        body = f"{name} {instr.target}"
    elif op in (Opcode.RDTSC, Opcode.RDRAND):
        body = f"{name} {instr.rd}"
    else:
        body = name
    if instr.comment:
        body = f"{body}  ; {instr.comment}"
    return body
