"""Micro-ISA: registers, instructions, programs and the assembler."""

from repro.isa.instructions import Instruction, Opcode, INSTRUCTION_SIZE
from repro.isa.program import Program, ProgramBuilder, ProgramError
from repro.isa.assembler import AssemblerError, assemble, disassemble

__all__ = [
    "Instruction",
    "Opcode",
    "INSTRUCTION_SIZE",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "AssemblerError",
    "assemble",
    "disassemble",
]
