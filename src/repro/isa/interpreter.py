"""Sequential reference interpreter for the micro-ISA.

Executes programs one instruction at a time with no pipeline, no
speculation and no caches — the architectural golden model.  The test
suite runs random programs through both this interpreter and the
out-of-order core and demands identical final state, which pins down
the core's speculation, forwarding and recovery logic.

Memory is a flat virtual-address dictionary (the interpreter models
architecture, not microarchitecture).  ``rdtsc`` counts retired
instructions (any monotone counter is architecturally valid);
``rdrand`` draws from a seeded stream so a paired core run can be
compared when given the same seed.  TSX is modelled architecturally:
transactions either commit atomically or (on ``tabort``) roll back.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa import registers
from repro.isa.instructions import Opcode
from repro.isa.program import Program

MASK64 = (1 << 64) - 1


def _signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


class InterpreterError(Exception):
    """Raised on runaway programs (missing halt, infinite loop)."""


@dataclass
class InterpreterState:
    int_regs: Dict[str, int] = field(
        default_factory=registers.fresh_int_regfile)
    fp_regs: Dict[str, float] = field(
        default_factory=registers.fresh_fp_regfile)
    memory: Dict[int, object] = field(default_factory=dict)
    retired: int = 0

    def read(self, name: str):
        if name in self.int_regs:
            return self.int_regs[name]
        return self.fp_regs[name]

    def write(self, name: str, value):
        if name in self.int_regs:
            self.int_regs[name] = int(value) & MASK64
        else:
            self.fp_regs[name] = float(value)


class Interpreter:
    """Architectural golden model."""

    def __init__(self, program: Program, rdrand_seed: int = 0xC0FFEE,
                 memory: Optional[Dict[int, object]] = None):
        self.program = program
        self.state = InterpreterState()
        if memory:
            self.state.memory.update(memory)
        self._rdrand = random.Random(rdrand_seed)
        self._txn_checkpoint: Optional[Tuple] = None
        self._txn_fallback: Optional[int] = None

    def run(self, max_steps: int = 1_000_000) -> InterpreterState:
        pc = 0
        steps = 0
        while pc < len(self.program):
            if steps >= max_steps:
                raise InterpreterError(
                    f"no halt within {max_steps} steps")
            steps += 1
            pc = self._step(pc)
            if pc is None:
                break
        return self.state

    # ------------------------------------------------------------------

    def _step(self, pc: int) -> Optional[int]:
        state = self.state
        instr = self.program[pc]
        op = instr.op
        state.retired += 1
        a = state.read(instr.rs1) if instr.rs1 else None
        b = state.read(instr.rs2) if instr.rs2 else None
        nxt = pc + 1

        if op is Opcode.LI or op is Opcode.FLI:
            state.write(instr.rd, instr.imm)
        elif op in (Opcode.MOV, Opcode.FMOV):
            state.write(instr.rd, a)
        elif op is Opcode.ADD:
            state.write(instr.rd, a + b)
        elif op is Opcode.SUB:
            state.write(instr.rd, a - b)
        elif op is Opcode.AND:
            state.write(instr.rd, a & b)
        elif op is Opcode.OR:
            state.write(instr.rd, a | b)
        elif op is Opcode.XOR:
            state.write(instr.rd, a ^ b)
        elif op is Opcode.SHL:
            state.write(instr.rd, a << (b & 63))
        elif op is Opcode.SHR:
            state.write(instr.rd, (a & MASK64) >> (b & 63))
        elif op is Opcode.ADDI:
            state.write(instr.rd, a + instr.imm)
        elif op is Opcode.SUBI:
            state.write(instr.rd, a - instr.imm)
        elif op is Opcode.ANDI:
            state.write(instr.rd, a & instr.imm)
        elif op is Opcode.ORI:
            state.write(instr.rd, a | instr.imm)
        elif op is Opcode.XORI:
            state.write(instr.rd, a ^ instr.imm)
        elif op is Opcode.SHLI:
            state.write(instr.rd, a << (instr.imm & 63))
        elif op is Opcode.SHRI:
            state.write(instr.rd, (a & MASK64) >> (instr.imm & 63))
        elif op is Opcode.MUL:
            state.write(instr.rd, a * b)
        elif op is Opcode.DIV:
            state.write(instr.rd, a // b if b else 0)
        elif op is Opcode.FADD:
            state.write(instr.rd, a + b)
        elif op is Opcode.FSUB:
            state.write(instr.rd, a - b)
        elif op is Opcode.FMUL:
            state.write(instr.rd, a * b)
        elif op is Opcode.FDIV:
            try:
                state.write(instr.rd, a / b)
            except ZeroDivisionError:
                state.write(instr.rd,
                            math.inf if a > 0 else
                            -math.inf if a < 0 else 0.0)
        elif op in (Opcode.LOAD, Opcode.FLOAD):
            va = (a + instr.imm) & MASK64
            value = state.memory.get(va, 0)
            if op is Opcode.FLOAD:
                state.write(instr.rd, float(value))
            else:
                state.write(instr.rd, int(value) & MASK64
                            if not isinstance(value, float)
                            else int(value) & MASK64)
        elif op in (Opcode.STORE, Opcode.FSTORE):
            va = (a + instr.imm) & MASK64
            state.memory[va] = b
        elif op is Opcode.BEQ:
            if _signed(a) == _signed(b):
                nxt = self.program.target_index(instr)
        elif op is Opcode.BNE:
            if _signed(a) != _signed(b):
                nxt = self.program.target_index(instr)
        elif op is Opcode.BLT:
            if _signed(a) < _signed(b):
                nxt = self.program.target_index(instr)
        elif op is Opcode.BGE:
            if _signed(a) >= _signed(b):
                nxt = self.program.target_index(instr)
        elif op is Opcode.JMP:
            nxt = self.program.target_index(instr)
        elif op is Opcode.HALT:
            return None
        elif op is Opcode.NOP or op is Opcode.FENCE:
            pass
        elif op is Opcode.RDTSC:
            state.write(instr.rd, state.retired)
        elif op is Opcode.RDRAND:
            state.write(instr.rd, self._rdrand.getrandbits(64))
        elif op is Opcode.TBEGIN:
            self._txn_checkpoint = (dict(state.int_regs),
                                    dict(state.fp_regs),
                                    dict(state.memory))
            self._txn_fallback = self.program.target_index(instr)
        elif op is Opcode.TEND:
            self._txn_checkpoint = None
            self._txn_fallback = None
        elif op is Opcode.TABORT:
            if self._txn_checkpoint is not None:
                ints, fps, memory = self._txn_checkpoint
                state.int_regs = dict(ints)
                state.fp_regs = dict(fps)
                state.memory = dict(memory)
                state.int_regs["r15"] = (state.int_regs.get("r15", 0)
                                         + 1) & MASK64
                nxt = self._txn_fallback
                self._txn_checkpoint = None
                self._txn_fallback = None
        else:  # pragma: no cover
            raise InterpreterError(f"unhandled opcode {op}")
        return nxt


def run_program(program: Program, memory: Optional[Dict[int, object]]
                = None, rdrand_seed: int = 0xC0FFEE,
                max_steps: int = 1_000_000) -> InterpreterState:
    """Convenience wrapper: interpret *program* and return final
    architectural state."""
    return Interpreter(program, rdrand_seed, memory).run(max_steps)
