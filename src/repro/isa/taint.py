"""Taint-tracking layer over the sequential golden-model interpreter.

The architectural counterpart of the OOO-core oracle in
:mod:`repro.oracle.tracker`: secrets are registered as tainted memory
(exact words or regions) and taint propagates through register and
memory dataflow as the program executes.  Control taint folds into
data here — after a branch on tainted data *every* subsequently
written value is tainted — which over-approximates harder than the
core-side oracle but keeps the sequential model a sound upper bound:
a value the OOO oracle commits as tainted is tainted here too.

Used by the oracle unit tests to pin the propagation rules on
hand-built programs, and by ``repro.tools.diffsweep --oracle`` as the
architectural reference during differential sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Opcode
from repro.isa.interpreter import MASK64, Interpreter
from repro.isa.program import Program


class TaintedInterpreter(Interpreter):
    """Golden-model interpreter with architectural taint tracking."""

    def __init__(self, program: Program, rdrand_seed: int = 0xC0FFEE,
                 memory: Optional[Dict[int, object]] = None):
        super().__init__(program, rdrand_seed, memory)
        #: Tainted integer/float registers, by name.
        self.reg_taint: Set[str] = set()
        #: Tainted memory words, by exact virtual address.
        self.mem_taint: Set[int] = set()
        #: Registered secret regions, half-open ``[start, end)``.
        self.regions: List[Tuple[int, int]] = []
        #: Sticky control taint: a branch depended on tainted data.
        self.control = False

    # --- seeding / queries --------------------------------------------

    def taint_region(self, va: int, size: int = 8) -> None:
        """Mark ``[va, va+size)`` as secret."""
        self.regions.append((va, va + size))

    def taint_register(self, name: str) -> None:
        """Mark register *name* as tainted."""
        self.reg_taint.add(name)

    def tainted_reg(self, name: str) -> bool:
        """Is register *name* tainted?"""
        return name in self.reg_taint

    def tainted_mem(self, va: int) -> bool:
        """Is the word at *va* tainted (exact word or secret region)?"""
        if va in self.mem_taint:
            return True
        return any(start <= va < end for start, end in self.regions)

    # --- propagation --------------------------------------------------

    def _step(self, pc: int) -> Optional[int]:
        self._propagate(self.program[pc])
        return super()._step(pc)

    def _propagate(self, instr) -> None:
        op = instr.op
        src = ((instr.rs1 in self.reg_taint if instr.rs1 else False)
               or (instr.rs2 in self.reg_taint if instr.rs2 else False))
        if instr.is_cond_branch:
            if src:
                self.control = True
            return
        if op in (Opcode.LOAD, Opcode.FLOAD):
            va = (self.state.read(instr.rs1) + instr.imm) & MASK64
            taint = src or self.control or self.tainted_mem(va)
            self._set_reg_taint(instr.rd, taint)
            return
        if op in (Opcode.STORE, Opcode.FSTORE):
            va = (self.state.read(instr.rs1) + instr.imm) & MASK64
            if src or self.control:
                self.mem_taint.add(va)
            else:
                self.mem_taint.discard(va)
            return
        dest = instr.dest()
        if dest is None:
            return
        if op in (Opcode.LI, Opcode.FLI, Opcode.RDTSC, Opcode.RDRAND):
            # Immediate / environment sources carry no data taint, but
            # reaching them can already be secret-dependent.
            self._set_reg_taint(dest, self.control)
            return
        self._set_reg_taint(dest, src or self.control)

    def _set_reg_taint(self, name: str, taint: bool) -> None:
        if taint:
            self.reg_taint.add(name)
        else:
            self.reg_taint.discard(name)
