"""Text assembler for the micro-ISA.

The syntax mirrors :func:`repro.isa.instructions.format_instruction`, so
``assemble(program.listing())`` round-trips.  Example::

    ; compute 6 * 7
        li   r1, 6
        li   r2, 7
        mul  r3, r1, r2
    loop:
        subi r3, r3, 1
        bne  r3, r0, loop
        halt

Rules:

* one instruction per line; blank lines are ignored
* comments start with ``;`` or ``#`` and run to end of line
* a line ending in ``:`` declares a label for the next instruction
* memory operands use ``[base + offset]`` / ``[base - offset]`` /
  ``[base]``; a ``.w`` suffix on the mnemonic selects 4-byte accesses
* integer immediates accept decimal and ``0x`` hexadecimal
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.isa.instructions import (
    COND_BRANCHES,
    LOADS,
    Opcode,
    STORES,
    THREE_REG_FP,
    THREE_REG_INT,
    TWO_REG_IMM_INT,
)
from repro.isa.instructions import Instruction
from repro.isa.program import Program, ProgramBuilder, ProgramError


class AssemblerError(Exception):
    """Raised when assembly text cannot be parsed."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*)\s*:\s*$")
_MEM_RE = re.compile(
    r"^\[\s*([A-Za-z_]\w*)\s*(?:([+-])\s*(0x[0-9a-fA-F]+|\d+)\s*)?\]$")
_MNEMONICS = {op.value: op for op in Opcode}


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos != -1:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    """Split an operand string on commas that sit outside brackets."""
    operands, depth, current = [], 0, []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal: {text!r}", line_no)


def _parse_float(text: str, line_no: int) -> float:
    try:
        return float(text)
    except ValueError:
        raise AssemblerError(f"bad float literal: {text!r}", line_no)


def _parse_mem_operand(text: str, line_no: int) -> Tuple[str, int]:
    match = _MEM_RE.match(text)
    if not match:
        raise AssemblerError(f"bad memory operand: {text!r}", line_no)
    base, sign, offset_text = match.groups()
    offset = _parse_int(offset_text, line_no) if offset_text else 0
    if sign == "-":
        offset = -offset
    return base, offset


def _expect(operands: List[str], count: int, mnemonic: str, line_no: int):
    if len(operands) != count:
        raise AssemblerError(
            f"{mnemonic} expects {count} operand(s), got {len(operands)}",
            line_no)


def _parse_instruction(mnemonic: str, operands: List[str],
                       line_no: int) -> Instruction:
    from repro.isa import instructions as ins

    width = 8
    if mnemonic.endswith(".w"):
        width = 4
        mnemonic = mnemonic[:-2]
    op = _MNEMONICS.get(mnemonic)
    if op is None:
        raise AssemblerError(f"unknown mnemonic: {mnemonic!r}", line_no)
    if width == 4 and op not in LOADS | STORES:
        raise AssemblerError(
            f"width suffix only valid on memory ops: {mnemonic!r}", line_no)

    try:
        if op is Opcode.LI:
            _expect(operands, 2, mnemonic, line_no)
            return ins.li(operands[0], _parse_int(operands[1], line_no))
        if op is Opcode.FLI:
            _expect(operands, 2, mnemonic, line_no)
            return ins.fli(operands[0], _parse_float(operands[1], line_no))
        if op is Opcode.MOV:
            _expect(operands, 2, mnemonic, line_no)
            return ins.mov(operands[0], operands[1])
        if op is Opcode.FMOV:
            _expect(operands, 2, mnemonic, line_no)
            return ins.fmov(operands[0], operands[1])
        if op in THREE_REG_INT or op in THREE_REG_FP:
            _expect(operands, 3, mnemonic, line_no)
            ctor = getattr(ins, mnemonic if mnemonic not in ("and", "or")
                           else mnemonic + "_")
            return ctor(operands[0], operands[1], operands[2])
        if op in TWO_REG_IMM_INT:
            _expect(operands, 3, mnemonic, line_no)
            ctor = getattr(ins, mnemonic)
            return ctor(operands[0], operands[1],
                        _parse_int(operands[2], line_no))
        if op in LOADS:
            _expect(operands, 2, mnemonic, line_no)
            base, offset = _parse_mem_operand(operands[1], line_no)
            ctor = ins.load if op is Opcode.LOAD else ins.fload
            return ctor(operands[0], base, offset, width)
        if op in STORES:
            _expect(operands, 2, mnemonic, line_no)
            base, offset = _parse_mem_operand(operands[0], line_no)
            ctor = ins.store if op is Opcode.STORE else ins.fstore
            return ctor(base, operands[1], offset, width)
        if op in COND_BRANCHES:
            _expect(operands, 3, mnemonic, line_no)
            ctor = getattr(ins, mnemonic)
            return ctor(operands[0], operands[1], operands[2])
        if op is Opcode.JMP:
            _expect(operands, 1, mnemonic, line_no)
            return ins.jmp(operands[0])
        if op is Opcode.TBEGIN:
            _expect(operands, 1, mnemonic, line_no)
            return ins.tbegin(operands[0])
        if op in (Opcode.RDTSC, Opcode.RDRAND):
            _expect(operands, 1, mnemonic, line_no)
            ctor = ins.rdtsc if op is Opcode.RDTSC else ins.rdrand
            return ctor(operands[0])
        if op in (Opcode.HALT, Opcode.NOP, Opcode.FENCE, Opcode.TEND,
                  Opcode.TABORT):
            _expect(operands, 0, mnemonic, line_no)
            return Instruction(op)
    except ValueError as exc:  # register-class validation failures
        raise AssemblerError(str(exc), line_no) from exc
    raise AssemblerError(f"unhandled mnemonic: {mnemonic!r}", line_no)


def assemble(source: str, name: str = "assembled") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    builder = ProgramBuilder(name)
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            try:
                builder.label(label_match.group(1))
            except ProgramError as exc:
                raise AssemblerError(str(exc), line_no) from exc
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        builder.emit(_parse_instruction(mnemonic, operands, line_no))
    try:
        return builder.build()
    except ProgramError as exc:
        raise AssemblerError(str(exc)) from exc


def disassemble(program: Program) -> str:
    """Render *program* back to assembler text (see ``Program.listing``)."""
    return program.listing()
