"""Level 2: the content-addressed trial store.

A sweep trial is a pure function of ``(trial function, parameters,
derived seed)`` — the harness determinism contract the chaos suite
proves.  :class:`TrialStore` therefore addresses every completed trial
by :func:`repro.memo.keys.trial_key` and persists it on disk, so any
later sweep — another process, another worker count, another day —
that reaches the same key loads the result instead of recomputing it.

Records are journal-compatible JSON (one object per file, the same
``sha256`` + base64-pickle shape as :mod:`repro.harness.journal`
lines) under ``<root>/<key[:2]>/<key>.json``.  Writes go through a
unique temporary file and ``os.replace``, so concurrent writers of
the same key are safe: both computed the same deterministic bytes and
last-write-wins is a no-op.  Reads degrade, never crash: a corrupted
record, an undecodable pickle, a record written by a different
simulator epoch (``snapshot_version``) or a result rejected by the
caller's ``verify`` hook all count as a miss with the matching
counter bumped, and the trial simply recomputes.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.snapshot.machine import SNAPSHOT_VERSION

#: Bump when the record layout changes; old records become misses.
STORE_VERSION = 1

#: Environment variable consulted by :func:`resolve_store` when no
#: explicit cache directory is given.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Counter names every :class:`TrialStore` maintains.
STORE_COUNTERS = ("hits", "misses", "stores", "corrupt", "stale",
                  "rejected", "uncacheable")


@dataclass
class MemoConfig:
    """Memoization knobs (a registered :mod:`repro.config` dataclass).

    ``cache_dir=""`` leaves the trial store disabled unless the
    ``REPRO_CACHE_DIR`` environment variable points somewhere.
    """

    enabled: bool = True
    cache_dir: str = ""
    #: LRU capacity of a per-process replay-window memo (Level 1).
    window_entries: int = 64


class TrialStore:
    """Persistent, process-safe store of completed trial results."""

    def __init__(self, root: Any, *, metrics: Any = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self._counts: Dict[str, int] = {name: 0
                                        for name in STORE_COUNTERS}
        self._bytes = 0

    # --- accounting -------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount
        if self.metrics is not None:
            self.metrics.counter(f"memo.store.{name}").inc(amount)

    def counts(self) -> Dict[str, int]:
        """Copy of the hit/miss/degradation counters."""
        return dict(self._counts, bytes=self._bytes)

    def note_uncacheable(self) -> None:
        """Record a trial that could not be keyed (ran uncached)."""
        self._bump("uncacheable")

    # --- layout -----------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Where *key*'s record lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    # --- reads ------------------------------------------------------------

    def get(self, key: str,
            verify: Optional[Callable[[Any], bool]] = None
            ) -> Tuple[bool, Any]:
        """``(True, result)`` on a sound hit, else ``(False, None)``.

        Every failure mode is a miss: the record is unreadable or
        mis-shaped (``corrupt``), from another store/snapshot epoch
        (``stale``), fails its integrity digest or unpickle
        (``corrupt``), or is rejected by *verify* (``rejected``).
        """
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self._bump("misses")
            return False, None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._bump("corrupt")
            return False, None
        if (not isinstance(record, dict)
                or record.get("kind") != "trial"
                or record.get("key") != key):
            self._bump("corrupt")
            return False, None
        if (record.get("version") != STORE_VERSION
                or record.get("snapshot_version") != SNAPSHOT_VERSION):
            self._bump("stale")
            return False, None
        try:
            payload = base64.b64decode(record["result"])
            if hashlib.sha256(payload).hexdigest() != record["sha256"]:
                self._bump("corrupt")
                return False, None
            result = pickle.loads(payload)
        except (KeyError, TypeError, ValueError, pickle.PickleError):
            self._bump("corrupt")
            return False, None
        if verify is not None and not verify(result):
            self._bump("rejected")
            return False, None
        self._bump("hits")
        return True, result

    # --- writes -----------------------------------------------------------

    def put(self, key: str, seed: int, result: Any) -> None:
        """Persist *result* under *key* (atomic, last-write-wins)."""
        payload = pickle.dumps(result,
                               protocol=pickle.HIGHEST_PROTOCOL)
        record = {
            "kind": "trial",
            "key": key,
            "version": STORE_VERSION,
            "snapshot_version": SNAPSHOT_VERSION,
            "seed": seed,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "result": base64.b64encode(payload).decode("ascii"),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(record, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=f".{key[:8]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._bytes += len(payload)
        self._bump("stores")
        if self.metrics is not None:
            self.metrics.counter("memo.store.bytes").inc(len(payload))


def resolve_store(cache_dir: Any = None, *, enabled: bool = True,
                  metrics: Any = None) -> Optional[TrialStore]:
    """Build the :class:`TrialStore` the CLI flags / environment ask
    for: ``None`` when caching is disabled (``--no-cache``) or no
    directory is configured (neither ``cache_dir`` nor the
    ``REPRO_CACHE_DIR`` environment variable)."""
    if not enabled:
        return None
    directory = cache_dir or os.environ.get(CACHE_DIR_ENV) or None
    if not directory:
        return None
    return TrialStore(directory, metrics=metrics)


__all__ = [
    "CACHE_DIR_ENV",
    "MemoConfig",
    "STORE_COUNTERS",
    "STORE_VERSION",
    "TrialStore",
    "resolve_store",
]
