"""Level 1: replay-window memoization.

MicroScope's replay handle forces the pipeline to re-execute the same
instruction window over and over; a sweep replays the same windows
across trials as well.  :class:`WindowMemo` keys each window by the
stable digest of the machine snapshot at its start
(:func:`repro.snapshot.digest.state_digest`) plus the replay recipe's
fingerprint, and on a hit splices the recorded outcome — the final
platform snapshot, which carries the emitted monitor observations,
stat-group deltas and metrics instruments — back into the machine
instead of simulating a single cycle.

Soundness over hit rate: the digest is a pure function of logical
state, so two equal keys imply bit-identical executions; anything the
key cannot see (bound-method callbacks, non-primitive closure state)
raises :class:`~repro.memo.keys.Unmemoizable` upstream and runs cold.
A poisoned entry (integrity digest mismatch, undecodable result,
failed restore, rejected by the verify hook) degrades to a recompute
with a counter bump — never a wrong result.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.memo.keys import canonical_json
from repro.snapshot.digest import state_digest
from repro.snapshot.machine import MachineSnapshot, SnapshotError

#: Counter names every :class:`WindowMemo` maintains.
WINDOW_COUNTERS = ("hits", "misses", "uncacheable", "corrupt",
                   "rejected", "evictions")


class _Entry:
    __slots__ = ("final", "payload", "sha256")

    def __init__(self, final: MachineSnapshot, payload: bytes):
        self.final = final
        self.payload = payload
        self.sha256 = hashlib.sha256(payload).hexdigest()


class WindowMemo:
    """An LRU cache of replayed-window outcomes.

    ``run(env, extra_key, run_fn)`` takes a pre-snapshot of *env*,
    keys it together with *extra_key* (typically the recipe
    fingerprint), and either restores a recorded final snapshot (hit)
    or executes *run_fn* cold and records its outcome (miss).  The
    returned value is ``run_fn``'s result, pickled on record so a hit
    returns an equal-but-independent object, exactly like a worker
    -process round trip.
    """

    def __init__(self, max_entries: int = 64, *,
                 metrics: Any = None, tracer: Any = None,
                 verify: Optional[Callable[[Any], bool]] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.metrics = metrics
        self.tracer = tracer
        self.verify = verify
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._counts: Dict[str, int] = {name: 0
                                        for name in WINDOW_COUNTERS}
        self._bytes = 0
        self._t0 = time.perf_counter()

    # --- accounting -------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount
        if self.metrics is not None:
            self.metrics.counter(f"memo.window.{name}").inc(amount)

    def _trace(self, name: str, started: float, **args: Any) -> None:
        if self.tracer is None:
            return
        from repro.observability.tracer import MEMO_TID
        now = time.perf_counter() - self._t0
        self.tracer.complete(name, int(started * 1e6),
                             int((now - started) * 1e6),
                             cat="memo", tid=MEMO_TID, **args)

    def counts(self) -> Dict[str, int]:
        """Copy of the hit/miss/degradation counters."""
        return dict(self._counts, bytes=self._bytes,
                    entries=len(self._entries))

    def note_uncacheable(self) -> None:
        """Record a window that could not be keyed (ran cold)."""
        self._bump("uncacheable")

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
        self._bytes = 0

    # --- the memoized run -------------------------------------------------

    @staticmethod
    def _key(pre: MachineSnapshot, extra_key: Any) -> str:
        material = (state_digest(pre)
                    + canonical_json(extra_key)).encode()
        return hashlib.sha256(material).hexdigest()

    def key_for(self, env: Any, extra_key: Any) -> str:
        """The window key for *env*'s current state + *extra_key*."""
        return self._key(MachineSnapshot.take(env), extra_key)

    def run(self, env: Any, extra_key: Any,
            run_fn: Callable[[], Any]) -> Any:
        """Execute (or splice) one window; returns *run_fn*'s result."""
        started = time.perf_counter() - self._t0
        pre = MachineSnapshot.take(env)
        key = self._key(pre, extra_key)
        entry = self._entries.get(key)
        if entry is not None:
            result = self._replay(env, pre, key, entry)
            if result is not _MISS:
                self._bump("hits")
                self._trace("memo.window.hit", started, key=key[:16])
                return result
        self._bump("misses")
        result = run_fn()
        payload = pickle.dumps(result,
                               protocol=pickle.HIGHEST_PROTOCOL)
        self._store(key, _Entry(MachineSnapshot.take(env), payload))
        self._trace("memo.window.miss", started, key=key[:16])
        return result

    def _replay(self, env: Any, pre: MachineSnapshot, key: str,
                entry: _Entry) -> Any:
        """Splice a recorded outcome into *env*; ``_MISS`` on any
        integrity failure (the entry is dropped and recomputed)."""
        if hashlib.sha256(entry.payload).hexdigest() != entry.sha256:
            self._drop(key, "corrupt")
            return _MISS
        try:
            result = pickle.loads(entry.payload)
        except Exception:
            self._drop(key, "corrupt")
            return _MISS
        if self.verify is not None and not self.verify(result):
            self._drop(key, "rejected")
            return _MISS
        try:
            entry.final.restore(env)
        except SnapshotError:
            pre.restore(env)
            self._drop(key, "corrupt")
            return _MISS
        self._entries.move_to_end(key)
        return result

    def _drop(self, key: str, reason: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= len(entry.payload)
        self._bump(reason)

    def _store(self, key: str, entry: _Entry) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old.payload)
        self._entries[key] = entry
        self._bytes += len(entry.payload)
        if self.metrics is not None:
            self.metrics.counter("memo.window.bytes").inc(
                len(entry.payload))
        while len(self._entries) > self.max_entries:
            _evicted_key, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted.payload)
            self._bump("evictions")


class _Miss:
    __slots__ = ()


#: Internal sentinel distinguishing "integrity miss" from a recorded
#: result of ``None``.
_MISS = _Miss()


__all__ = ["WindowMemo", "WINDOW_COUNTERS"]
