"""Two-level deterministic compute cache.

MicroScope is a determinism machine: a replay handle forces the
pipeline to re-execute the same instruction window bit-for-bit, and
the harness seed lineage makes every sweep trial a pure function of
its parameters.  This package turns both observations into caches —
compute every identical replay exactly once:

* **Level 1 — replay windows** (:class:`WindowMemo`,
  :mod:`repro.memo.window`): key a replayed window by the stable
  digest of the machine snapshot at its start
  (:func:`repro.snapshot.state_digest`) plus the recipe fingerprint;
  on a hit, splice the recorded final snapshot back into the machine
  instead of simulating.  Used through
  :meth:`repro.core.replayer.Replayer.run_window`.
* **Level 2 — sweep trials** (:class:`TrialStore`,
  :mod:`repro.memo.store`): a persistent on-disk store addressed by
  SHA-256 of (trial function fingerprint, canonical parameters,
  derived seed), plugged in under
  :func:`repro.harness.run_resilient_sweep`, the
  :class:`repro.Experiment` facade and the evaluation matrix, so
  re-running an unchanged configuration is near-instant and safe
  across processes.

Both levels are sound by construction: keys cover everything the
outcome depends on, anything unkeyable (:class:`Unmemoizable`) runs
cold, and any poisoned entry degrades to a recompute with a counter
bump.  ``tests/snapshot/test_memo_differential.py`` proves memoized
runs bit-identical to cold ones — machine state, observations and
metrics counters included.
"""

from repro.memo.keys import (
    Unmemoizable,
    canonical,
    canonical_json,
    digest_of,
    fingerprint_callable,
    recipe_fingerprint,
    trial_key,
)
from repro.memo.store import (
    CACHE_DIR_ENV,
    STORE_VERSION,
    MemoConfig,
    TrialStore,
    resolve_store,
)
from repro.memo.window import WindowMemo

__all__ = [
    "CACHE_DIR_ENV",
    "MemoConfig",
    "STORE_VERSION",
    "TrialStore",
    "Unmemoizable",
    "WindowMemo",
    "canonical",
    "canonical_json",
    "digest_of",
    "fingerprint_callable",
    "recipe_fingerprint",
    "resolve_store",
    "trial_key",
]
