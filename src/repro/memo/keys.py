"""Canonical cache keys for deterministic compute.

Both memoization levels rest on the same question: *when are two
computations guaranteed to produce bit-identical results?*  Answer:
when everything their outcome depends on — configuration, parameters,
seed lineage, captured machine state, attack callbacks and their
closure state — canonicalises to the same bytes.  This module builds
those bytes.

:func:`canonical` maps a parameter structure to a JSON-compatible,
tagged form (stable across processes and dict orderings);
:func:`digest_of` hashes it.  :func:`fingerprint_callable` reduces a
callable to its identity (module, qualname, code hash) plus primitive
closure state — and *refuses* (:class:`Unmemoizable`) callables whose
behaviour depends on state the key cannot see: bound methods (their
``self`` is arbitrary mutable state outside any snapshot) and
closures over non-primitive cells.  Refusal is the safety valve: an
unkeyable computation is simply never cached, so the cache can be
wrong only by doing extra work, never by returning a stale result.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import types
from typing import Any

from repro.config import to_dict as config_to_dict


class Unmemoizable(TypeError):
    """The value cannot be soundly reduced to a cache key."""


def _code_hash(fn: Any) -> str:
    code = getattr(fn, "__code__", None)
    if code is None:
        return ""
    material = repr((code.co_code, code.co_consts, code.co_names,
                     code.co_varnames)).encode()
    return hashlib.sha256(material).hexdigest()[:16]


def fingerprint_callable(fn: Any) -> Any:
    """Canonical identity of a callable, or raise :class:`Unmemoizable`.

    Plain functions (including closures over primitives) and
    ``functools.partial`` wrappers fingerprint; bound methods and
    closures over mutable non-primitive state do not — their behaviour
    depends on objects the key cannot capture.
    """
    if isinstance(fn, functools.partial):
        return {"__partial__": fingerprint_callable(fn.func),
                "args": canonical(fn.args),
                "kwargs": canonical(dict(fn.keywords))}
    if isinstance(fn, types.MethodType):
        raise Unmemoizable(
            f"bound method {fn.__qualname__} closes over live object "
            f"state; it cannot be keyed soundly")
    if isinstance(fn, types.BuiltinFunctionType):
        return {"__fn__": f"{fn.__module__}:{fn.__qualname__}"}
    if isinstance(fn, types.FunctionType):
        cells = []
        for cell in fn.__closure__ or ():
            try:
                value = cell.cell_contents
            except ValueError as exc:  # pragma: no cover - empty cell
                raise Unmemoizable(
                    f"{fn.__qualname__} has an empty closure cell"
                ) from exc
            cells.append(canonical(value))
        return {"__fn__": f"{fn.__module__}:{fn.__qualname__}",
                "code": _code_hash(fn),
                "cells": cells}
    if callable(fn):
        # A dataclass __call__ instance keys by its declared field
        # state plus the class identity; any other instance carries
        # state the key cannot see.
        if dataclasses.is_dataclass(fn) and not isinstance(fn, type):
            return {"__callable__": canonical(fn),
                    "call": f"{type(fn).__module__}:"
                            f"{type(fn).__qualname__}.__call__"}
        raise Unmemoizable(
            f"callable {type(fn).__qualname__} instance state is "
            f"invisible to the cache key")
    raise Unmemoizable(f"{fn!r} is not callable")


def canonical(value: Any) -> Any:
    """Reduce *value* to a JSON-compatible canonical structure.

    Handles primitives, bytes, enums, tuples/lists, dicts (string-ified
    sorted keys), sets/frozensets (sorted), registered config
    dataclasses (via :func:`repro.config.to_dict`), generic dataclasses
    (tagged by qualified name) and callables.  Raises
    :class:`Unmemoizable` for anything else.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__module__}:"
                            f"{type(value).__qualname__}",
                "value": canonical(value.value)}
    if isinstance(value, tuple):
        return {"__tuple__": [canonical(v) for v in value]}
    if isinstance(value, list):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        items = [canonical(v) for v in value]
        return {"__set__": sorted(
            items, key=lambda v: json.dumps(v, sort_keys=True))}
    if isinstance(value, dict):
        return {"__dict__": [
            [str(k), canonical(v)]
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        try:
            return {"__config__": config_to_dict(value)}
        except TypeError:
            pass
        record: Any = {"__dataclass__": f"{type(value).__module__}:"
                                        f"{type(value).__qualname__}"}
        for field in dataclasses.fields(value):
            record[field.name] = canonical(getattr(value, field.name))
        return record
    if callable(value):
        return fingerprint_callable(value)
    raise Unmemoizable(
        f"cannot canonicalise {type(value).__name__!r} value "
        f"{value!r} into a cache key")


def canonical_json(value: Any) -> str:
    """The canonical structure as deterministic JSON text."""
    return json.dumps(canonical(value), sort_keys=True,
                      separators=(",", ":"))


def digest_of(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def recipe_fingerprint(recipe: Any) -> Any:
    """Canonical identity/knob state of an
    :class:`~repro.core.recipes.AttackRecipe`.

    Covers the parts *outside* any machine snapshot: the attack and
    pivot callbacks (with closure state) and the static knobs.  The
    mutable progress fields (``replays``, ``probe_log``, monitored
    addresses…) travel in the module's snapshot capture and are keyed
    by the state digest instead.  Raises :class:`Unmemoizable` when a
    callback cannot be keyed (e.g. a bound method of a stateful
    stepper object).
    """
    return {
        "name": recipe.name,
        "process": recipe.process.name,
        "replay_handle_va": recipe.replay_handle_va,
        "confidence": canonical(recipe.confidence),
        "max_replays": recipe.max_replays,
        "walk_tuning": canonical(recipe.walk_tuning),
        "prime_monitor_addrs": recipe.prime_monitor_addrs,
        "attack_function": (None if recipe.attack_function is None
                            else fingerprint_callable(
                                recipe.attack_function)),
        "pivot_function": (None if recipe.pivot_function is None
                           else fingerprint_callable(
                               recipe.pivot_function)),
    }


def trial_key(trial_fn: Any, params: Any, seed: int) -> str:
    """The content address of one sweep trial.

    SHA-256 over the trial function's fingerprint, the canonical
    parameters and the derived seed — everything a deterministic
    trial's outcome is a function of.  Raises :class:`Unmemoizable`
    when either the function or the parameters cannot be keyed.
    """
    return digest_of({"fn": fingerprint_callable(trial_fn),
                      "params": canonical(params),
                      "seed": seed})


__all__ = [
    "Unmemoizable",
    "canonical",
    "canonical_json",
    "digest_of",
    "fingerprint_callable",
    "recipe_fingerprint",
    "trial_key",
]
