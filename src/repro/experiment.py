"""The top-level experiment facade.

One builder covers the whole pipeline that experiment scripts used to
assemble by hand from six modules — machine construction, warm-start
snapshots, (resilient) sweeps, and reporting::

    import repro

    # Single attack run:
    result = repro.Experiment(
        attack=repro.PortContentionAttack(measurements=1500),
        victim={"secret": 1},
    ).run().result

    # A fault-tolerant parameter sweep:
    report = repro.Experiment(
        attack=repro.PortContentionAttack(),
        sweep=[{"secret": s} for s in (0, 1)],
        workers=2,
        policy=repro.FaultPolicy(timeout=300.0, max_attempts=3),
        journal="fig10.journal",
    ).run()
    mul, div = report.results

An :class:`Experiment` is declarative and reusable: ``run()`` does
not mutate it, so the same instance can be run repeatedly (e.g. to
resume an interrupted sweep from its journal).

Two ways to say what a trial does, mutually exclusive:

``attack=``
    any object with a ``run`` method (all classes in
    :mod:`repro.core.attacks` qualify).  Each trial calls
    ``attack.run(**victim, **sweep_item)``; sweep items must be dicts.
``trial=``
    a bare ``fn(params, seed)`` callable (the harness trial contract);
    sweep items are passed through verbatim and ``victim`` must be
    unset.  Use this for custom drivers that want the derived seed.

Everything below the facade stays public — :meth:`environment` hands
back the same :class:`~repro.core.replayer.Replayer` an attack driver
would build, positioned on a warm-start snapshot when asked, so
dropping one abstraction level never means rewriting the setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.config import MachineConfig, to_dict
from repro.harness.chaos import ChaosPlan
from repro.harness.resilience import (
    FaultPolicy,
    SweepReport,
    run_resilient_sweep,
)
from repro.observability.registry import MetricsRegistry
from repro.observability.tracer import EventTracer


@dataclass
class ExperimentReport:
    """What :meth:`Experiment.run` returns: results + accounting."""

    label: str
    #: Merged trial results in sweep order (length 1 for single runs).
    results: List[Any]
    #: Per-trial attempt/outcome accounting from the resilient runner.
    report: Optional[SweepReport]
    #: The registry the sweep accounting was recorded into.
    metrics: Optional[MetricsRegistry] = None
    #: Per-trial leakage summaries (``LeakageSummary.to_dict`` shape,
    #: ``None`` for skipped trials) when the experiment ran with
    #: ``oracle=``; ``None`` when the oracle was off.
    oracle: Optional[List[Optional[Dict[str, Any]]]] = None

    @property
    def result(self) -> Any:
        """The sole result of a non-sweep experiment."""
        if len(self.results) != 1:
            raise ValueError(
                f"experiment {self.label!r} has {len(self.results)} "
                "results; use .results")
        return self.results[0]

    @property
    def wall_seconds(self) -> float:
        """Host seconds the sweep took (0.0 when nothing ran)."""
        return self.report.wall_seconds if self.report else 0.0

    @property
    def cache(self) -> Dict[str, int]:
        """Trial-store counter deltas (hits, misses, stores…) for
        this run; empty when no store was attached."""
        if self.report is None or self.report.cache is None:
            return {}
        return dict(self.report.cache)

    @property
    def cached_trials(self) -> int:
        """How many trials were served from the content-addressed
        store instead of running."""
        if self.report is None:
            return 0
        return self.report.resolution_counts().get("cached", 0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (results themselves are *not* included;
        they are arbitrary objects)."""
        return {
            "label": self.label,
            "trials": len(self.results),
            "wall_seconds": self.wall_seconds,
            "sweep": self.report.to_dict() if self.report else None,
        }


def _attack_trial(params: Any, seed: int) -> Any:
    """Module-level trial adapter so sweeps over attacks pickle."""
    attack, kwargs = params
    return attack.run(**kwargs)


@dataclass(frozen=True)
class _OracleTrial:
    """Oracle-activating wrapper around a trial function.

    A frozen dataclass (not a closure) so worker pools can pickle it
    and the memo layer can key it: its content address covers both
    the wrapped function and the oracle configuration, so oracle-on
    and oracle-off runs of the same trial never share a cache entry.
    """

    inner: Callable[[Any, int], Any]
    config: Any  # OracleConfig; typed loosely to keep imports lazy

    def __call__(self, params: Any, seed: int) -> Dict[str, Any]:
        """Run the trial under an active oracle; box the result with
        the leakage summary (unboxed again in :meth:`Experiment.run`)."""
        from repro.oracle import TaintOracle, activate
        oracle = TaintOracle(self.config)
        with activate(oracle):
            result = self.inner(params, seed)
        return {"__oracle__": oracle.summary.to_dict(),
                "result": result}


@dataclass
class Experiment:
    """Declarative experiment: what to run, how hard to try."""

    #: Attack object (``attack.run(**victim, **sweep_item)`` per trial).
    attack: Any = None
    #: Raw ``fn(params, seed)`` trial (exclusive with ``attack``).
    trial: Optional[Callable[[Any, int], Any]] = None
    #: Keyword arguments shared by every trial's ``attack.run`` call.
    victim: Mapping[str, Any] = field(default_factory=dict)
    #: Per-trial parameters; ``None`` means one single run.
    sweep: Optional[Sequence[Any]] = None

    # --- platform construction (for environment(); attacks that build
    # their own machines ignore these) -----------------------------------
    machine: Optional[MachineConfig] = None
    kernel: Any = None
    module: Any = None

    # --- execution -------------------------------------------------------
    workers: Optional[int] = None
    master_seed: int = 0
    label: str = ""
    policy: Optional[FaultPolicy] = None
    chaos: Optional[ChaosPlan] = None
    #: Path or :class:`~repro.harness.journal.SweepJournal` for resume.
    journal: Any = None
    #: Path or :class:`~repro.memo.store.TrialStore`: the persistent
    #: content-addressed trial cache (see :mod:`repro.memo`).
    store: Any = None
    #: ``"scalar"`` runs one machine per trial; ``"batch"`` adds a
    #: lockstep-fleet pre-pass (requires ``trial=`` to carry a
    #: ``fleet_plan``; see :class:`repro.batch.FleetTrial`).
    backend: str = "scalar"
    #: Accepted for signature symmetry with
    #: :class:`repro.evaluation.matrix.MatrixRunner`; experiments are
    #: not service-routable (only whole matrices are), so any non-None
    #: value raises at :meth:`run`.
    service: Any = None
    #: Taint-tracking leakage oracle: ``True`` / an
    #: :class:`~repro.oracle.OracleConfig` (or its dict form) runs
    #: every trial under :func:`repro.oracle.activate` and fills
    #: :attr:`ExperimentReport.oracle`; ``None``/``False`` leaves the
    #: run bit-identical to an oracle-free build.
    oracle: Any = None

    # --- observability ---------------------------------------------------
    metrics: Optional[MetricsRegistry] = None
    tracer: Optional[EventTracer] = None

    def __post_init__(self):
        if self.attack is not None and self.trial is not None:
            raise ValueError("pass either attack= or trial=, not both")
        if self.attack is None and self.trial is None:
            raise ValueError("an Experiment needs attack= or trial=")
        if self.trial is not None and self.victim:
            raise ValueError("victim= only applies to attack=; fold "
                             "shared parameters into the sweep items")
        if self.attack is not None and not hasattr(self.attack, "run"):
            raise TypeError(
                f"attack object {self.attack!r} has no run() method")

    # --- platform access --------------------------------------------------

    def _config_key(self) -> str:
        parts = []
        for config in (self.machine, self.kernel, self.module):
            parts.append("None" if config is None
                         else repr(sorted(to_dict(config).items())))
        return "|".join(parts)

    def environment(self, *, warm: bool = False):
        """Build the wired platform as a
        :class:`~repro.core.replayer.Replayer`.

        With ``warm=True`` the underlying environment comes from the
        process-wide :func:`repro.snapshot.warm_start` cache, keyed on
        this experiment's configs: repeated calls rewind to one
        post-build snapshot instead of reconstructing the platform.
        """
        from repro.core.replayer import AttackEnvironment, Replayer
        if warm:
            from repro.snapshot import warm_start
            env, _ = warm_start(
                ("experiment", self._config_key()),
                lambda: (AttackEnvironment.build(
                    machine_config=self.machine,
                    kernel_config=self.kernel,
                    module_config=self.module), None))
            return Replayer(env)
        return Replayer(AttackEnvironment.build(
            machine_config=self.machine, kernel_config=self.kernel,
            module_config=self.module))

    # --- execution ---------------------------------------------------------

    def _trial_spec(self):
        """Resolve (trial_fn, params list) from the declaration."""
        if self.trial is not None:
            params = list(self.sweep) if self.sweep is not None \
                else [None]
            return self.trial, params
        shared = dict(self.victim)
        if self.sweep is None:
            items: List[Mapping[str, Any]] = [{}]
        else:
            items = []
            for item in self.sweep:
                if not isinstance(item, Mapping):
                    raise TypeError(
                        "sweep items must be dicts of attack.run() "
                        f"keyword arguments, got {item!r}")
                items.append(item)
        return _attack_trial, [(self.attack, {**shared, **item})
                               for item in items]

    def run(self) -> ExperimentReport:
        """Execute and return an :class:`ExperimentReport`."""
        if self.service is not None:
            raise NotImplementedError(
                "Experiment(service=...) is not supported: the "
                "experiment service executes whole matrices, not "
                "arbitrary trial callables. Use "
                "repro.evaluation.MatrixRunner(service=...) instead.")
        from repro.oracle.tracker import _coerce_config
        oracle_config = _coerce_config(self.oracle)
        trial_fn, params = self._trial_spec()
        if oracle_config is not None:
            trial_fn = _OracleTrial(inner=trial_fn,
                                    config=oracle_config)
        metrics = self.metrics if self.metrics is not None \
            else MetricsRegistry()
        workers = self.workers if self.workers is not None else 1
        sweep = run_resilient_sweep(
            trial_fn, params,
            master_seed=self.master_seed, workers=workers,
            label=self.label, policy=self.policy, chaos=self.chaos,
            journal=self.journal, store=self.store, metrics=metrics,
            tracer=self.tracer, backend=self.backend)
        results = sweep.results()
        summaries: Optional[List[Optional[Dict[str, Any]]]] = None
        if oracle_config is not None:
            summaries = [None if boxed is None
                         else boxed.get("__oracle__")
                         for boxed in results]
            results = [None if boxed is None else boxed.get("result")
                       for boxed in results]
            self._record_oracle(summaries, metrics)
        return ExperimentReport(label=self.label, results=results,
                                report=sweep.report, metrics=metrics,
                                oracle=summaries)

    def _record_oracle(self,
                       summaries: List[Optional[Dict[str, Any]]],
                       metrics: MetricsRegistry) -> None:
        """Fold per-trial leakage summaries into the observability
        sinks: ``oracle.*`` counters plus one tracer instant per
        leaking trial."""
        for index, summary in enumerate(summaries):
            if summary is None:
                continue
            metrics.counter("oracle.trials").inc()
            total = summary.get("events", 0)
            metrics.counter("oracle.events").inc(total)
            for kind, count in summary.get("counts", {}).items():
                metrics.counter(f"oracle.events.{kind}").inc(count)
            if summary.get("verdict") == "leaks":
                metrics.counter("oracle.leaking_trials").inc()
            if self.tracer is not None and total:
                self.tracer.instant(
                    "oracle.leak", ts=0, cat="oracle", tid=index,
                    total=total, verdict=summary.get("verdict"))


__all__ = ["Experiment", "ExperimentReport"]
