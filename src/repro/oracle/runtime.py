"""Thread-local oracle activation and import-light hook shims.

The simulator's hot paths (victim setup, machine construction) must
not import the tracker — or pay anything — when no oracle is active.
This module holds the one piece of shared state, a thread-local
"active oracle" slot, plus the tiny notification shims the rest of
the codebase calls unconditionally:

* :func:`note_machine` — called from ``Machine.__init__`` (mirroring
  the profiler's ``note_machine`` idiom) so machines built while an
  oracle is active get its hooks attached.
* :func:`note_secret_write` — called from ``write_secret`` /
  ``write_ciphertext`` style victim helpers to seed taint.

Both are no-ops unless a :class:`~repro.oracle.tracker.TaintOracle`
has been activated on the *current thread* via :func:`activate`
(thread-local because the experiment harness and the job service run
trials on worker threads, each needing its own oracle).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

_active = threading.local()


def current() -> Optional[Any]:
    """The oracle active on this thread, or ``None``."""
    return getattr(_active, "oracle", None)


@contextmanager
def activate(oracle: Any) -> Iterator[Any]:
    """Make *oracle* the active oracle on this thread for the block.

    Nesting restores the previous oracle on exit, so scoped control
    runs (e.g. oraclecheck's secret-free leg) compose.
    """
    previous = current()
    _active.oracle = oracle
    try:
        yield oracle
    finally:
        _active.oracle = previous


def note_machine(machine: Any) -> None:
    """Attach the active oracle's hooks to a freshly built machine.

    No-op when no oracle is active on this thread.  The attach is
    idempotent per machine (warm-start caches reuse machines across
    trials) and installs a *forwarding hub*: hooks stay wired after
    the oracle deactivates but forward to :func:`current`, costing a
    ``None``-check when idle.
    """
    oracle = current()
    if oracle is None:
        return
    from repro.oracle.tracker import attach_machine

    attach_machine(machine)


def note_secret_write(process: Any, va: int, size: int = 8) -> None:
    """Register ``[va, va+size)`` in *process* as secret-tainted.

    Victim helpers call this from every secret/ciphertext write; it
    is a no-op unless an oracle is active on this thread *and* its
    config has ``seed_secrets`` enabled.
    """
    oracle = current()
    if oracle is not None:
        oracle.add_secret_region(process, va, size)
