"""Structured leakage events and their per-run summary.

A :class:`LeakageEvent` records one moment where the *observable*
component of a microarchitectural event — which cache set/way a load
touched, which issue port an instruction occupied, how long a page
walk took, which VPN a fault exposed, what a squash erased — depended
on tainted (secret-derived) state.  Events are raised by the
:class:`~repro.oracle.tracker.TaintOracle` hooks wired into the core,
the cache hierarchy and the page-walk path.

The oracle can see millions of events in one attack cell (a sticky
control taint flags every subsequent issue in that context), so the
:class:`LeakageSummary` keeps bounded state: per-kind counts plus the
first ``max_samples`` full events as exemplars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

#: Event kinds, in the order the docs discuss them.
EVENT_KINDS: Tuple[str, ...] = (
    "cache-touch",      # a tainted-address (or secret-region) access
    "port-issue",       # a tainted op occupied an issue port
    "walk-latency",     # a tainted access took a page walk
    "page-fault",       # a taint-dependent VA faulted (OS-visible)
    "squash-replay",    # secret-dependent work was squashed/replayed
    "spec-issue",       # retroactive: squashed wrong-path issue under
                        # a tainted trigger (primed mispredicts)
)

#: Why an event's observable is taint-dependent.
REASONS: Tuple[str, ...] = ("data", "address", "region", "control")


@dataclass(frozen=True)
class LeakageEvent:
    """One secret-dependent observable microarchitectural event."""

    #: One of :data:`EVENT_KINDS`.
    kind: str
    #: Core cycle the event was observed at.
    cycle: int
    #: Hardware context the instruction ran on.
    context_id: int
    #: Program index (PC) of the responsible instruction.
    index: int
    #: Opcode mnemonic of the responsible instruction.
    op: str
    #: Subset of :data:`REASONS` explaining the taint dependence.
    reasons: Tuple[str, ...] = ()
    #: Kind-specific observables (set/way, port name, latency class,
    #: VPN, squash reason...).  JSON-clean values only.
    detail: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready form."""
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "context": self.context_id,
            "index": self.index,
            "op": self.op,
            "reasons": list(self.reasons),
            "detail": {k: self.detail[k] for k in sorted(self.detail)},
        }


class LeakageSummary:
    """Bounded accumulator for one oracle activation.

    Counts every event per kind and keeps the first ``max_samples``
    events verbatim; :meth:`to_dict` is deterministic and compact
    enough to embed in a matrix cell's ``detail``.
    """

    def __init__(self, max_samples: int = 32):
        self.max_samples = max_samples
        self.total = 0
        self.counts: Dict[str, int] = {}
        self.samples: List[LeakageEvent] = []

    def record(self, event: LeakageEvent) -> None:
        """Count *event*, keeping it verbatim while under the cap."""
        self.total += 1
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        if len(self.samples) < self.max_samples:
            self.samples.append(event)

    @property
    def verdict(self) -> str:
        """``"leaks"`` when any secret-dependent observable fired,
        else ``"clean"``."""
        return "leaks" if self.total else "clean"

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready form (sorted kind counts)."""
        return {
            "verdict": self.verdict,
            "events": self.total,
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "samples": [event.to_dict() for event in self.samples],
        }

    def __repr__(self) -> str:
        return (f"<LeakageSummary {self.verdict} total={self.total} "
                f"counts={self.counts}>")
