"""Taint-based leakage oracle (InSpectre-style, arXiv:1911.00868).

MicroScope's evaluation decides "does this defense work" statistically
(:func:`repro.evaluation.classify_cell`).  This package turns the same
question into a checkable information-flow property: secrets seed
taint, taint propagates through the simulated pipeline, and any
*observable* microarchitectural event that depends on taint — cache
set/way touches, issue-port choices, page-walk latency, squash/replay
boundaries, OS-visible faults — raises a structured
:class:`LeakageEvent`.  "Oracle clean" is then a sound certificate
that no secret-dependent observable fired during the run.

Typical use::

    from repro.oracle import OracleConfig, TaintOracle, activate

    oracle = TaintOracle(OracleConfig())
    with activate(oracle):
        ...  # build machines, register secrets, run the attack
    print(oracle.summary.verdict, oracle.summary.counts)

or, one level up, ``Experiment(oracle=True)`` /
``MatrixRunner(oracle=True)`` and the ``python -m repro oracle``
cross-validation pass (:mod:`repro.tools.oraclecheck`).
"""

from repro.oracle.events import (EVENT_KINDS, REASONS, LeakageEvent,
                                 LeakageSummary)
from repro.oracle.runtime import (activate, current, note_machine,
                                  note_secret_write)
from repro.oracle.tracker import (OracleConfig, TaintOracle,
                                  attach_machine,
                                  oracle_consistency_verify)

__all__ = [
    "EVENT_KINDS",
    "LeakageEvent",
    "LeakageSummary",
    "OracleConfig",
    "REASONS",
    "TaintOracle",
    "activate",
    "attach_machine",
    "current",
    "note_machine",
    "note_secret_write",
    "oracle_consistency_verify",
]
