"""The taint-tracking leakage oracle over the out-of-order core.

Secrets are registered as tainted *regions* of a process's virtual
address space (:meth:`TaintOracle.add_secret_region`, seeded by the
victim ``write_secret`` / ``write_ciphertext`` helpers through
:func:`repro.oracle.runtime.note_secret_write`).  From there taint is
propagated dynamically alongside the core's own dataflow:

* **decode** — an entry is tainted when any source operand comes from
  a tainted architectural register or a tainted producer entry;
* **complete** — a load is additionally tainted by the memory it read
  (exact tainted word, registered secret region, or an in-flight
  tainted store it forwarded from); a tainted entry taints its
  dependents, and a tainted conditional branch sets the context's
  sticky *control* taint;
* **retire** — taint is committed to architectural state: the
  destination register and (for stores) the stored-to word are marked
  or cleared.

Hook points where microarchitectural state becomes *observable* then
raise :class:`~repro.oracle.events.LeakageEvent`s when the observable
depends on taint: issue-port choice (``port-issue``), cache set/way
touch and its hit-level/latency class (``cache-touch``), page-walk
latency (``walk-latency``), squash/replay boundaries
(``squash-replay`` / ``spec-issue``) and OS-visible page faults
(``page-fault``).

Known over-approximations (the oracle is *sound* for the direction
"verdict clean ⇒ no secret-dependent observable", not precise):

* taint is per ROB entry, not per operand — a store with a tainted
  value taints its (possibly public) target word and vice versa;
* control taint is sticky per context: after one tainted branch,
  every later issue in that context is flagged;
* no value-based clearing (``xor r, r`` stays tainted);
* memory taint is word-granular at exact virtual addresses; only
  registered *regions* match overlapping accesses.

``docs/ORACLE.md`` discusses each with examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.oracle import runtime
from repro.oracle.events import LeakageEvent, LeakageSummary

#: Squash reasons that open a MicroScope replay window (the trigger
#: re-fetches, so flagged squashes are amplifiable, not one-shot).
_REPLAY_REASONS = ("page-fault", "mispredict", "memory-order")


@dataclass(frozen=True)
class OracleConfig:
    """Tuning knobs for a :class:`TaintOracle` activation."""

    #: Honor ``note_secret_write`` seeding.  Control runs set this
    #: False to prove the machinery itself raises zero events.
    seed_secrets: bool = True
    #: Verbatim events kept per run (counts are always exact).
    max_samples: int = 32

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean form (used inside memoizable trial params)."""
        return {"seed_secrets": self.seed_secrets,
                "max_samples": self.max_samples}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "OracleConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(seed_secrets=bool(payload.get("seed_secrets", True)),
                   max_samples=int(payload.get("max_samples", 32)))


def _coerce_config(oracle: Any) -> Optional[OracleConfig]:
    """Normalize an ``oracle=`` option: None/False off, True default,
    an :class:`OracleConfig` (or its dict form) as given."""
    if oracle is None or oracle is False:
        return None
    if oracle is True:
        return OracleConfig()
    if isinstance(oracle, OracleConfig):
        return oracle
    if isinstance(oracle, dict):
        return OracleConfig.from_dict(oracle)
    raise TypeError(f"oracle= expects None/bool/OracleConfig/dict, "
                    f"got {type(oracle).__name__}")


class TaintOracle:
    """Dynamic taint state plus the leakage-event log for one run.

    Activate with :func:`repro.oracle.runtime.activate`; machines
    built (or re-entered through a ``Replayer``) while active get the
    forwarding hub attached and start reporting into this instance.
    """

    def __init__(self, config: Optional[OracleConfig] = None):
        self.config = config or OracleConfig()
        self.summary = LeakageSummary(max_samples=self.config.max_samples)
        #: Registered secret regions: ``(pcid, start, end)`` half-open.
        self.regions: List[Tuple[int, int, int]] = []
        #: Exact tainted memory words: ``(pcid, va)``.
        self.mem: Set[Tuple[int, int]] = set()
        #: Tainted architectural registers: ``(context_id, reg)``.
        self.arch: Set[Tuple[int, str]] = set()
        #: In-flight tainted ROB entries: ``(context_id, seq)``.
        self.tainted: Set[Tuple[int, int]] = set()
        #: Contexts under sticky control taint.
        self.control: Set[int] = set()
        #: Entries already flagged at issue (suppresses duplicate
        #: retroactive ``spec-issue`` events at squash).
        self._flagged: Set[Tuple[int, int]] = set()
        #: Most recent hierarchy access ``(paddr, is_write, hit_level,
        #: latency)`` — correlated by paddr to attribute latency class.
        self._last_access: Optional[Tuple[int, bool, int, int]] = None

    # --- seeding ------------------------------------------------------

    def add_secret_region(self, process: Any, va: int, size: int) -> None:
        """Mark ``[va, va+size)`` of *process* as secret."""
        if not self.config.seed_secrets:
            return
        self.regions.append((self._process_pcid(process), va, va + size))

    @staticmethod
    def _process_pcid(process: Any) -> int:
        return process.pcid if process is not None else -1

    @staticmethod
    def _context_pcid(context: Any) -> int:
        process = getattr(context, "process", None)
        return process.pcid if process is not None else -1

    def _addr_tainted(self, pcid: int, va: Optional[int]) -> bool:
        if va is None:
            return False
        if (pcid, va) in self.mem:
            return True
        for region_pcid, start, end in self.regions:
            if region_pcid == pcid and start <= va < end:
                return True
        return False

    # --- event emission -----------------------------------------------

    def _emit(self, kind: str, cycle: int, context_id: int, index: int,
              op: str, reasons: Tuple[str, ...],
              detail: Dict[str, Any]) -> None:
        self.summary.record(LeakageEvent(
            kind=kind, cycle=cycle, context_id=context_id, index=index,
            op=op, reasons=reasons, detail=detail))

    # --- core hooks ---------------------------------------------------

    def on_decode(self, context: Any, entry: Any, sources: tuple) -> None:
        """Seed an entry's taint from its resolved source operands."""
        for src in sources:
            if src is None:
                continue
            kind, ref = src
            if kind == "arch":
                if (entry.context_id, ref) not in self.arch:
                    continue
            elif (ref.context_id, ref.seq) not in self.tainted:
                # "value" producers are final; "pending" producers that
                # turn out tainted upgrade us at their completion.
                continue
            self.tainted.add((entry.context_id, entry.seq))
            return

    def on_complete(self, context: Any, entry: Any) -> None:
        """Finalize an entry's taint and propagate it to dependents."""
        key = (entry.context_id, entry.seq)
        taint = key in self.tainted
        instr = entry.instr
        if instr.is_load and not taint:
            pcid = self._context_pcid(context)
            if self._addr_tainted(pcid, entry.addr):
                taint = True
            else:
                for store in context.rob.stores_older_than(entry.seq):
                    if (store.addr_resolved and store.addr == entry.addr
                            and (store.context_id, store.seq)
                            in self.tainted):
                        taint = True
                        break
            if taint:
                self.tainted.add(key)
        if not taint:
            return
        for dependent, _slot in entry.dependents:
            if not dependent.squashed:
                self.tainted.add((dependent.context_id, dependent.seq))
        if instr.is_cond_branch:
            self.control.add(entry.context_id)

    def on_issue(self, core: Any, context: Any, entry: Any) -> None:
        """Flag the observables of a taint-dependent issue."""
        key = (entry.context_id, entry.seq)
        instr = entry.instr
        is_mem = instr.is_load or instr.is_store
        reasons: List[str] = []
        if key in self.tainted:
            reasons.append("address" if is_mem else "data")
        if is_mem and self._addr_tainted(self._context_pcid(context),
                                         entry.addr):
            reasons.append("region")
        if entry.context_id in self.control:
            reasons.append("control")
        if not reasons:
            return
        self._flagged.add(key)
        rtuple = tuple(reasons)
        cycle = core.cycle
        op = instr.op.value
        detail: Dict[str, Any] = {"port": entry.port_name,
                                  "class": entry.op_cls}
        if core.ports.is_non_pipelined(entry.op_cls):
            detail["occupies"] = True
        self._emit("port-issue", cycle, entry.context_id, entry.index,
                   op, rtuple, detail)
        if entry.paddr is not None:
            self._emit("cache-touch", cycle, entry.context_id,
                       entry.index, op, rtuple,
                       self._touch_detail(core, entry.paddr))
        if entry.walk_latency:
            self._emit("walk-latency", cycle, entry.context_id,
                       entry.index, op, rtuple,
                       {"latency": entry.walk_latency,
                        "faulted": entry.fault is not None})

    def _touch_detail(self, core: Any, paddr: int) -> Dict[str, Any]:
        l1 = core.hierarchy.l1
        detail: Dict[str, Any] = {"paddr": paddr,
                                  "set": l1.set_index(paddr)}
        where = l1.locate(paddr)
        if where is not None:
            detail["way"] = where[1]
        last = self._last_access
        if last is not None and last[0] == paddr:
            detail["hit_level"] = last[2]
            detail["latency"] = last[3]
        return detail

    def on_retire(self, core: Any, context: Any, entry: Any) -> None:
        """Commit (or clear) taint in architectural state at retire."""
        key = (entry.context_id, entry.seq)
        taint = key in self.tainted or entry.context_id in self.control
        instr = entry.instr
        if instr.is_store and entry.addr is not None:
            cell = (self._context_pcid(context), entry.addr)
            if taint:
                self.mem.add(cell)
                if entry.paddr is not None:
                    reason = ("data" if key in self.tainted
                              else "control")
                    self._emit("cache-touch", core.cycle,
                               entry.context_id, entry.index,
                               instr.op.value, (reason,),
                               self._touch_detail(core, entry.paddr))
            else:
                self.mem.discard(cell)
        dest = instr.dest()
        if dest is not None and entry.value is not None:
            reg = (entry.context_id, dest)
            if taint:
                self.arch.add(reg)
            else:
                self.arch.discard(reg)
        self.tainted.discard(key)
        self._flagged.discard(key)

    def on_squash(self, cycle: int, context: Any, squashed: list,
                  reason: str, trigger: Any) -> None:
        """Flag secret-dependent squashes (the replay boundary)."""
        ctx = context.context_id
        trigger_taint = False
        if trigger is not None:
            trigger_taint = (ctx, trigger.seq) in self.tainted
            if not trigger_taint and trigger.addr is not None:
                trigger_taint = self._addr_tainted(
                    self._context_pcid(context), trigger.addr)
            # A mispredicted tainted branch squashes *before* its
            # completion hook runs — set control taint here so the
            # squash itself, and everything after, is flagged.
            if trigger_taint and trigger.instr.is_cond_branch:
                self.control.add(ctx)
        tainted = trigger_taint or ctx in self.control
        if tainted and squashed:
            reasons = []
            if trigger_taint:
                reasons.append("data")
            if ctx in self.control:
                reasons.append("control")
            rtuple = tuple(reasons)
            index = trigger.index if trigger is not None else -1
            op = (trigger.instr.op.value if trigger is not None
                  else reason)
            detail: Dict[str, Any] = {
                "reason": reason, "squashed": len(squashed),
                "replayable": reason in _REPLAY_REASONS}
            self._emit("squash-replay", cycle, ctx, index, op, rtuple,
                       detail)
            if (reason == "page-fault" and trigger is not None
                    and trigger.addr is not None):
                self._emit("page-fault", cycle, ctx, index, op, rtuple,
                           {"vpn": trigger.addr >> 12})
            for entry in squashed:
                ekey = (ctx, entry.seq)
                if entry.issue_cycle is None or ekey in self._flagged:
                    continue
                self._emit("spec-issue", cycle, ctx, entry.index,
                           entry.instr.op.value, rtuple,
                           {"port": entry.port_name,
                            "class": entry.op_cls})
        for entry in squashed:
            ekey = (ctx, entry.seq)
            self.tainted.discard(ekey)
            self._flagged.discard(ekey)

    def on_mem_access(self, paddr: int, is_write: bool, hit_level: int,
                      latency: int) -> None:
        """Record the hierarchy's view of the most recent access."""
        self._last_access = (paddr, is_write, hit_level, latency)


# ---------------------------------------------------------------------
# machine attachment
# ---------------------------------------------------------------------


class _CoreHub:
    """Permanently-wired hook adapter forwarding to the thread's
    active oracle (a ``None``-check when idle, so warm machines keep
    the hub across oracle-free runs at negligible cost)."""

    __slots__ = ("core",)

    def __init__(self, core: Any):
        self.core = core

    def on_decode(self, context: Any, entry: Any, sources: tuple) -> None:
        oracle = runtime.current()
        if oracle is not None:
            oracle.on_decode(context, entry, sources)

    def on_complete(self, context: Any, entry: Any) -> None:
        oracle = runtime.current()
        if oracle is not None:
            oracle.on_complete(context, entry)

    def on_issue(self, context: Any, entry: Any) -> None:
        oracle = runtime.current()
        if oracle is not None:
            oracle.on_issue(self.core, context, entry)

    def on_retire(self, context: Any, entry: Any) -> None:
        oracle = runtime.current()
        if oracle is not None:
            oracle.on_retire(self.core, context, entry)

    def on_squash(self, cycle: int, context: Any, squashed: list,
                  reason: str, trigger: Any) -> None:
        oracle = runtime.current()
        if oracle is not None:
            oracle.on_squash(cycle, context, squashed, reason, trigger)

    def on_mem_access(self, paddr: int, is_write: bool, hit_level: int,
                      latency: int) -> None:
        oracle = runtime.current()
        if oracle is not None:
            oracle.on_mem_access(paddr, is_write, hit_level, latency)


def attach_machine(machine: Any) -> None:
    """Idempotently wire the oracle hub into *machine*'s core and
    memory hierarchy (see :func:`repro.oracle.runtime.note_machine`)."""
    core = machine.core
    if getattr(core, "_oracle_hub", None) is not None:
        return
    hub = _CoreHub(core)
    core._oracle_hub = hub
    core.oracle = hub
    core.decode_hooks.append(hub.on_decode)
    core.complete_hooks.append(hub.on_complete)
    core.issue_hooks.append(hub.on_issue)
    core.retire_hooks.append(hub.on_retire)
    machine.hierarchy.access_observers.append(hub.on_mem_access)


# ---------------------------------------------------------------------
# FaultPolicy.verify integration
# ---------------------------------------------------------------------


def oracle_consistency_verify(payload: Any) -> bool:
    """``FaultPolicy.verify``-compatible cross-check of a trial result.

    Accepts any payload; only dict payloads carrying an oracle summary
    under ``detail["oracle"]`` (the matrix cell shape) are checked.
    The invariant is one-directional: when the oracle's verdict is
    ``"clean"`` the statistical result must not show an
    above-chance-by-ε success — a clean oracle with a leaking
    statistic means the instrumentation missed a flow, and the trial
    is rejected so the resilience harness surfaces it.
    """
    if not isinstance(payload, dict):
        return True
    detail = payload.get("detail")
    if not isinstance(detail, dict):
        return True
    oracle = detail.get("oracle")
    if not isinstance(oracle, dict) or oracle.get("verdict") != "clean":
        return True
    accuracy = payload.get("accuracy")
    chance = payload.get("chance")
    if not isinstance(accuracy, (int, float)) \
            or not isinstance(chance, (int, float)):
        return True
    from repro.evaluation.classify import EPSILON

    return accuracy - chance <= EPSILON
