"""SGX-style enclaves.

The model captures exactly the properties MicroScope needs (§2.3):

* an enclave is a reverse sandbox inside a user process: a region of
  virtual memory that supervisor software must not read or write;
* the OS still performs demand paging for enclave pages, so page
  faults during enclave execution reach the kernel — but only as an
  *asynchronous exit* (AEX) carrying the page-aligned faulting address;
* on enclave entry/exit the hardware may flush the branch predictor
  (the countermeasure of [12] that §4.3 works around);
* integrity checks ensure the OS loads the right page back for the
  right VPN — MicroScope never remaps pages, so these checks pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.context import HardwareContext
from repro.isa.program import Program
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.sgx.attestation import measure_program
from repro.vm import address as vaddr
from repro.vm.faults import PageFault


class EnclaveProtectionError(Exception):
    """Raised when supervisor software tries to introspect an enclave."""


@dataclass
class AEXRecord:
    """One asynchronous enclave exit, as visible to the OS."""

    cycle: int
    page_aligned_va: int   # low 12 bits masked: all SGX reveals
    is_write: bool


@dataclass
class EnclaveConfig:
    #: Flush the branch predictor at enclave entry and exit (the
    #: countermeasure against BranchScope-style attacks; see §4.2.3).
    flush_predictor_on_boundary: bool = True
    #: Size of the enclave's private data region in bytes.
    private_size: int = 16 * vaddr.PAGE_SIZE


class Enclave:
    """One enclave instance inside a host process."""

    def __init__(self, enclave_id: int, kernel: Kernel, process: Process,
                 config: Optional[EnclaveConfig] = None,
                 name: str = ""):
        self.enclave_id = enclave_id
        self.kernel = kernel
        self.process = process
        self.config = config or EnclaveConfig()
        self.name = name or f"enclave{enclave_id}"
        self.private_base = process.alloc(
            self.config.private_size, name=f"{self.name}-private")
        self.private_size = self.config.private_size
        self.measurement: Optional[str] = None
        self.entered = False
        self.aex_log: List[AEXRecord] = []
        process.enclave = self

    # --- memory classification --------------------------------------------

    def owns(self, va: int) -> bool:
        """Is *va* inside the enclave's private region?"""
        return self.private_base <= va < self.private_base + \
            self.private_size

    def check_supervisor_access(self, va: int):
        """Raise :class:`EnclaveProtectionError` if the OS tries to
        read or write private enclave memory."""
        if self.owns(va):
            raise EnclaveProtectionError(
                f"supervisor access to enclave-private {va:#x} denied")

    # --- lifecycle -----------------------------------------------------------

    def load_code(self, program: Program):
        """ECREATE/EADD/EINIT rolled into one: measure the code."""
        self.measurement = measure_program(program)

    def enter(self, context: HardwareContext, program: Program,
              start_index: int = 0):
        """EENTER: start running enclave code on *context*."""
        if self.measurement is None:
            self.load_code(program)
        elif self.measurement != measure_program(program):
            raise EnclaveProtectionError(
                "program does not match enclave measurement")
        if self.config.flush_predictor_on_boundary:
            self.kernel.machine.core.predictor.flush()
        context.load_program(program, self.process, start_index)
        self.entered = True

    def exit(self):
        """EEXIT: leave the enclave."""
        if self.config.flush_predictor_on_boundary:
            self.kernel.machine.core.predictor.flush()
        self.entered = False

    # --- AEX ---------------------------------------------------------------

    def record_aex(self, fault: PageFault, cycle: int):
        """Record the OS-visible view of a fault during enclave
        execution: only the page-aligned VA is revealed (§2.3)."""
        self.aex_log.append(AEXRecord(
            cycle=cycle, page_aligned_va=fault.page_aligned_va,
            is_write=fault.is_write))

    @property
    def aex_count(self) -> int:
        return len(self.aex_log)

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        return (self.measurement, self.entered,
                [AEXRecord(r.cycle, r.page_aligned_va, r.is_write)
                 for r in self.aex_log])

    def restore(self, state: tuple):
        measurement, entered, aex_log = state
        self.measurement = measurement
        self.entered = entered
        self.aex_log = [AEXRecord(r.cycle, r.page_aligned_va, r.is_write)
                        for r in aex_log]


class SGXPlatform:
    """Factory/registry for enclaves, plus the supervisor access guard.

    Attacks in this repository interact with victim memory *only*
    through :meth:`supervisor_read` / :meth:`supervisor_write`, which
    enforce the SGX isolation guarantee — making it explicit that the
    attack extracts secrets via side channels, never by introspection.
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.enclaves: List[Enclave] = []
        kernel.add_fault_hook(self._aex_hook)

    def create_enclave(self, process: Process,
                       config: Optional[EnclaveConfig] = None,
                       name: str = "") -> Enclave:
        enclave = Enclave(len(self.enclaves) + 1, self.kernel, process,
                          config, name)
        self.enclaves.append(enclave)
        return enclave

    def _aex_hook(self, context, fault: PageFault):
        """Record AEXs for bookkeeping; never claims the fault, so the
        regular (possibly MicroScope-hooked) handling still runs."""
        process = context.process
        if process is not None and process.enclave is not None:
            process.enclave.record_aex(fault, self.kernel.machine.cycle)
        return None

    # --- guarded supervisor access ------------------------------------------

    def supervisor_read(self, process: Process, va: int, width: int = 8):
        if process.enclave is not None:
            process.enclave.check_supervisor_access(va)
        return process.read(va, width)

    def supervisor_write(self, process: Process, va: int, value,
                         width: int = 8):
        if process.enclave is not None:
            process.enclave.check_supervisor_access(va)
        process.write(va, value, width)

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Enclave objects are shared by reference (processes point at
        them); their mutable state is cloned per enclave."""
        return tuple((enclave, enclave.capture())
                     for enclave in self.enclaves)

    def restore(self, state: tuple):
        self.enclaves = [enclave for enclave, _ in state]
        for enclave, enclave_state in state:
            enclave.restore(enclave_state)
