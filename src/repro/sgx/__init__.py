"""SGX substrate: enclaves, AEX, attestation and rollback protection."""

from repro.sgx.attestation import (
    AttestationReport,
    MonotonicCounter,
    RunOnceGuard,
    measure_program,
)
from repro.sgx.enclave import (
    AEXRecord,
    Enclave,
    EnclaveConfig,
    EnclaveProtectionError,
    SGXPlatform,
)

__all__ = [
    "AttestationReport",
    "MonotonicCounter",
    "RunOnceGuard",
    "measure_program",
    "AEXRecord",
    "Enclave",
    "EnclaveConfig",
    "EnclaveProtectionError",
    "SGXPlatform",
]
