"""Attestation and rollback protection.

The threat model (§3) restricts the adversary to *one run of the victim
per sensitive input*: "the victim can defend against the adversary
replaying the entire enclave code by using a combination of secure
channels and SGX attestation mechanisms" plus non-volatile monotonic
counters [37].  This module provides those pieces so the repository can
demonstrate that conventional replay is indeed blocked — and that
MicroScope's *microarchitectural* replay slips underneath all of it,
because the enclave never observes its own re-execution.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict

from repro.isa.program import Program


def measure_program(program: Program) -> str:
    """MRENCLAVE-style measurement: a digest over the code."""
    digest = hashlib.sha256()
    digest.update(program.name.encode())
    digest.update(program.listing().encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class AttestationReport:
    """A (simplified) signed quote binding measurement and nonce."""

    measurement: str
    nonce: int
    signature: str

    @staticmethod
    def generate(program: Program, nonce: int,
                 platform_key: str = "simulated-platform-key"
                 ) -> "AttestationReport":
        measurement = measure_program(program)
        payload = f"{measurement}:{nonce}:{platform_key}".encode()
        return AttestationReport(
            measurement=measurement, nonce=nonce,
            signature=hashlib.sha256(payload).hexdigest())

    def verify(self, expected_program: Program, nonce: int,
               platform_key: str = "simulated-platform-key") -> bool:
        if self.nonce != nonce:
            return False
        if self.measurement != measure_program(expected_program):
            return False
        payload = f"{self.measurement}:{nonce}:{platform_key}".encode()
        return self.signature == hashlib.sha256(payload).hexdigest()


class MonotonicCounter:
    """A non-volatile counter (ROTE-style [37]): increments survive
    restarts, so an enclave can prove to a remote user that it executed
    a given input exactly once."""

    def __init__(self):
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def increment(self) -> int:
        self._value += 1
        return self._value


class RunOnceGuard:
    """Enforces the single-run policy for sensitive inputs.

    ``begin_run(input_id)`` succeeds exactly once per input; a second
    attempt — a conventional whole-enclave replay — is rejected.  The
    point of the paper is that MicroScope never calls this twice: its
    replays happen *inside* one architectural run.
    """

    def __init__(self):
        self._counter = MonotonicCounter()
        self._seen: Dict[str, int] = {}

    def begin_run(self, input_id: str) -> int:
        """Register the start of a run; raise on repeated inputs."""
        if input_id in self._seen:
            raise PermissionError(
                f"input {input_id!r} was already executed "
                f"(run #{self._seen[input_id]}); conventional replay "
                f"blocked")
        ticket = self._counter.increment()
        self._seen[input_id] = ticket
        return ticket

    def runs_of(self, input_id: str) -> int:
        return 1 if input_id in self._seen else 0
