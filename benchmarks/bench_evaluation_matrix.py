"""Evaluation matrix (§8): every attack against every defense.

Runs the `repro.evaluation` matrix — the machinery behind
`docs/RESULTS.md` — and renders it as a table, one row per attack and
one column per defense, each cell classified defeated / degraded /
unaffected against the attack's own undefended baseline.

At default scale the port-contention row runs with trimmed sample
counts; ``REPRO_FULL_SCALE=1`` uses the `docs/RESULTS.md` defaults.
"""

from repro.evaluation import MatrixRunner

from conftest import emit, emit_json, full_scale, render_table


def test_evaluation_matrix(once):
    def experiment():
        overrides = {}
        if not full_scale():
            overrides = {"port-contention": {"measurements": 400,
                                             "calibrate_samples": 300}}
        runner = MatrixRunner(overrides=overrides,
                              label="bench-evaluation-matrix")
        return runner.run()

    matrix = once(experiment)

    headers = ["attack"] + list(matrix.defenses)
    rows = []
    for attack in matrix.attacks:
        row = [attack]
        for defense in matrix.defenses:
            cell = matrix.cell(attack, defense)
            if defense == "none":
                acc = cell.metrics.accuracy
                row.append(f"leaks ({acc:.2f})"
                           if acc is not None else "error")
            else:
                row.append(cell.classification)
        rows.append(row)
    table = render_table("Attack x defense evaluation matrix (§8)",
                         headers, rows)
    emit("evaluation_matrix", table)
    emit_json("evaluation_matrix", matrix.to_dict())

    # the §8 headline cells, asserted on the measured matrix
    assert matrix.cell("cf-cache", "none").metrics.accuracy == 1.0
    assert matrix.cell("cf-cache", "fences").classification == "defeated"
    assert matrix.cell("cf-cache", "tsgx").classification == "unaffected"
    assert matrix.cell("controlled-channel",
                       "pf-oblivious").classification == "defeated"
    assert matrix.cell("controlled-channel",
                       "tsgx").classification == "defeated"
    for attack in matrix.attacks:
        baseline = matrix.cell(attack, "none")
        assert baseline.metrics.error is None
