"""Evaluation matrix (§8): every attack against every defense.

Runs the `repro.evaluation` matrix — the machinery behind
`docs/RESULTS.md` — and renders it as a table, one row per attack and
one column per defense, each cell classified defeated / degraded /
unaffected against the attack's own undefended baseline.

A second benchmark re-runs a sub-matrix against a warm
content-addressed trial store (``repro.memo``) and asserts the cached
pass is byte-identical to the cold one while being at least 5x
faster — the wall-clock contract the memoization layer ships.

At default scale the port-contention row runs with trimmed sample
counts; ``REPRO_FULL_SCALE=1`` uses the `docs/RESULTS.md` defaults.
"""

import json
import time

from repro.evaluation import MatrixRunner
from repro.memo import TrialStore

from conftest import emit, emit_json, full_scale, render_table


def test_evaluation_matrix(once):
    def experiment():
        overrides = {}
        if not full_scale():
            overrides = {"port-contention": {"measurements": 400,
                                             "calibrate_samples": 300}}
        runner = MatrixRunner(overrides=overrides,
                              label="bench-evaluation-matrix")
        return runner.run()

    matrix = once(experiment)

    headers = ["attack"] + list(matrix.defenses)
    rows = []
    for attack in matrix.attacks:
        row = [attack]
        for defense in matrix.defenses:
            cell = matrix.cell(attack, defense)
            if defense == "none":
                acc = cell.metrics.accuracy
                row.append(f"leaks ({acc:.2f})"
                           if acc is not None else "error")
            else:
                row.append(cell.classification)
        rows.append(row)
    table = render_table("Attack x defense evaluation matrix (§8)",
                         headers, rows)
    emit("evaluation_matrix", table)
    emit_json("evaluation_matrix", matrix.to_dict())

    # the §8 headline cells, asserted on the measured matrix
    assert matrix.cell("cf-cache", "none").metrics.accuracy == 1.0
    assert matrix.cell("cf-cache", "fences").classification == "defeated"
    assert matrix.cell("cf-cache", "tsgx").classification == "unaffected"
    assert matrix.cell("controlled-channel",
                       "pf-oblivious").classification == "defeated"
    assert matrix.cell("controlled-channel",
                       "tsgx").classification == "defeated"
    for attack in matrix.attacks:
        baseline = matrix.cell(attack, "none")
        assert baseline.metrics.error is None


def test_evaluation_matrix_memoized(once, tmp_path):
    """Cold vs warm-store sub-matrix: identical bytes, >=5x faster."""
    overrides = {}
    if not full_scale():
        overrides = {"port-contention": {"measurements": 400,
                                         "calibrate_samples": 300}}
    store = TrialStore(tmp_path / "trial-cache")

    def run_matrix():
        runner = MatrixRunner(attacks=("cf-cache", "port-contention"),
                              defenses=("none", "fences", "tsgx"),
                              overrides=overrides, workers=1,
                              store=store,
                              label="bench-matrix-memoized")
        matrix = runner.run()
        return matrix, runner.last_run_report

    def experiment():
        t0 = time.perf_counter()
        cold_matrix, cold_report = run_matrix()
        cold_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_matrix, warm_report = run_matrix()
        warm_seconds = time.perf_counter() - t0
        return (cold_matrix, cold_report, cold_seconds,
                warm_matrix, warm_report, warm_seconds)

    (cold_matrix, cold_report, cold_seconds,
     warm_matrix, warm_report, warm_seconds) = once(experiment)
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    cells = len(cold_matrix.attacks) * len(cold_matrix.defenses)

    emit_json("evaluation_matrix_memoized", {
        "cells": cells,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "cold_cache": cold_report.cache,
        "warm_cache": warm_report.cache,
    })

    # The serialized artifact — what docs/results.json is built from —
    # must be byte-identical with the cache on.
    as_bytes = lambda m: json.dumps(  # noqa: E731
        m.to_dict(), indent=2, sort_keys=True)
    assert as_bytes(warm_matrix) == as_bytes(cold_matrix)
    assert cold_report.cached_trials == 0
    assert cold_report.cache["stores"] == cells
    assert warm_report.cached_trials == cells
    assert speedup >= 5.0, (
        f"warm store pass only {speedup:.1f}x faster")
