"""Ablation (§8): the countermeasures, attacked.

One row per defense with the measured outcome next to the paper's
assessment:

* fence-on-pipeline-flush kills replayed speculation (at performance
  cost the paper discusses);
* T-SGX suppresses OS-visible faults yet yields N-1 replays;
* Déjà Vu detects long attacks, masks short ones;
* PF-obliviousness defeats the page channel and *adds* replay handles.
"""

from repro.core.replayer import AttackEnvironment, Replayer
from repro.evaluation.defenses.dejavu import evaluate_dejavu
from repro.evaluation.defenses.fences import evaluate_fence_on_flush
from repro.evaluation.defenses.pf_oblivious import evaluate_pf_obliviousness
from repro.evaluation.defenses.tsgx import evaluate_tsgx

from conftest import emit, render_table


def test_defense_matrix(once):
    def experiment():
        fence = evaluate_fence_on_flush(replays=10)
        tsgx = evaluate_tsgx()
        dejavu_small = evaluate_dejavu(replays=2)
        dejavu_large = evaluate_dejavu(replays=50)
        rep = Replayer(AttackEnvironment.build())
        process = rep.kernel.create_process("pf")
        pf = evaluate_pf_obliviousness(process)
        return fence, tsgx, dejavu_small, dejavu_large, pf

    fence, tsgx, dejavu_small, dejavu_large, pf = once(experiment)
    rows = [
        ["fence-on-flush",
         f"leaked transmits {fence.transmit_issues_undefended} -> "
         f"{fence.transmit_issues_defended}",
         "replayed speculation blocked",
         "paper: 'obvious defense', corner cases remain"],
        ["T-SGX [50]",
         f"OS faults seen: {tsgx.os_faults_seen}; replay windows: "
         f"{tsgx.replay_windows_observed}/{tsgx.threshold}",
         "N-1 replays still leak" if tsgx.matches_paper else "held",
         "paper: 'still provides N-1 replays'"],
        ["Deja Vu [13] (2 replays)",
         f"elapsed {dejavu_small.elapsed_ticks} <= budget "
         f"{dejavu_small.budget_ticks}",
         "MASKED" if not dejavu_small.detected else "detected",
         "paper: replays masked by ordinary fault time"],
        ["Deja Vu [13] (50 replays)",
         f"elapsed {dejavu_large.elapsed_ticks} > budget "
         f"{dejavu_large.budget_ticks}",
         "detected" if dejavu_large.detected else "MISSED",
         "long attacks are caught"],
        ["PF-obliviousness [51]",
         f"handles {pf.plain_handles} -> {pf.oblivious_handles}",
         "HELPS MicroScope" if pf.helps_microscope else "neutral",
         "paper: added accesses provide more replay handles"],
    ]
    table = render_table("Defense ablation (§8)",
                         ["defense", "measurement", "outcome",
                          "paper's assessment"],
                         rows)
    emit("ablation_defenses", table)
    assert fence.leakage_blocked
    assert tsgx.matches_paper
    assert not dejavu_small.detected and dejavu_large.detected
    assert pf.defeats_controlled_channel and pf.helps_microscope
