"""Workload builders shared by the throughput benchmark and the CI
smoke check.

Three workloads, in increasing relevance to the paper:

* ``spin`` — a dependency-light multiply loop; measures raw per-cycle
  stepping overhead.
* ``smt spin`` — the same loop on both SMT contexts.
* ``replay attack`` — the MicroScope shape itself: a control-flow
  victim whose replay handle is kept non-present, so the pipeline
  spends nearly all its time stalled behind tuned page walks and
  kernel fault handling.  This is where the quiescence fast-forward
  scheduler earns its keep, and the workload the CI regression gate
  watches.
"""

import time

from repro.core.module import MicroScopeConfig
from repro.core.recipes import WalkLocation, WalkTuning, replay_n_times
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.config import CoreConfig
from repro.cpu.machine import Machine, MachineConfig
from repro.isa.program import ProgramBuilder
from repro.reporting import machine_report
from repro.victims.control_flow import setup_control_flow_victim


def busy_program(iterations):
    return (ProgramBuilder("spin")
            .li("r1", 0).li("r2", iterations).li("r3", 7)
            .label("loop")
            .mul("r4", "r3", "r3")
            .addi("r1", "r1", 1)
            .bne("r1", "r2", "loop")
            .halt().build())


def run_spin(iterations: int, contexts: int = 1) -> int:
    """Run the spin workload; return simulated cycles."""
    machine = Machine()
    per_context = iterations // contexts
    for context_id in range(contexts):
        machine.contexts[context_id].load_program(
            busy_program(per_context))
    machine.run(100_000)
    return machine.cycle


def run_replay_attack(fast_forward: bool, replays: int = 200):
    """Run the replay-attack workload; return ``(cycles, report)``.

    The report snapshot (per-context stats, cache/TLB/walker counters)
    lets callers assert that the fast-forward scheduler is bit-exact
    against naive stepping, not merely cycle-equal.
    """
    rep = Replayer(AttackEnvironment.build(
        machine_config=MachineConfig(
            core=CoreConfig(fast_forward=fast_forward))))
    victim_proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(victim_proc, secret=1,
                                       divisions=2, multiplications=2)
    recipe = rep.module.provide_replay_handle(
        victim_proc, victim.handle_va + 0x20, name="throughput-replay",
        attack_function=replay_n_times(replays),
        walk_tuning=WalkTuning(upper=WalkLocation.PWC,
                               leaf=WalkLocation.DRAM),
        max_replays=10 ** 9)
    rep.launch_victim(victim_proc, victim.program)
    rep.arm(recipe)
    rep.run_until_victim_done(context_id=0, max_cycles=100_000_000)
    return rep.machine.cycle, machine_report(rep.machine, rep.kernel,
                                             rep.module)


def timed(fn, *args, **kwargs):
    """Run *fn* once; return ``(result, host_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, max(time.perf_counter() - start, 1e-9)
