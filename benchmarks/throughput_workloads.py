"""Workload builders shared by the throughput benchmark and the CI
smoke check.

Three workloads, in increasing relevance to the paper:

* ``spin`` — a dependency-light multiply loop; measures raw per-cycle
  stepping overhead.
* ``smt spin`` — the same loop on both SMT contexts.
* ``replay attack`` — the MicroScope shape itself: a control-flow
  victim whose replay handle is kept non-present, so the pipeline
  spends nearly all its time stalled behind tuned page walks and
  kernel fault handling.  This is where the quiescence fast-forward
  scheduler earns its keep, and the workload the CI regression gate
  watches.
"""

import random
import time

from repro.batch import FleetPlan, FleetTrial, LaneInit
from repro.core.attacks.aes_cache import AESCacheAttack
from repro.core.attacks.port_contention import PortContentionAttack
from repro.core.recipes import WalkLocation, WalkTuning, replay_n_times
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.config import CoreConfig
from repro.config import MachineConfig
from repro.cpu.machine import Machine
from repro.isa.program import ProgramBuilder
from repro.reporting import machine_report
from repro.snapshot import clear_cache
from repro.victims.control_flow import setup_control_flow_victim


def busy_program(iterations):
    return (ProgramBuilder("spin")
            .li("r1", 0).li("r2", iterations).li("r3", 7)
            .label("loop")
            .mul("r4", "r3", "r3")
            .addi("r1", "r1", 1)
            .bne("r1", "r2", "loop")
            .halt().build())


def run_spin(iterations: int, contexts: int = 1) -> int:
    """Run the spin workload; return simulated cycles."""
    machine = Machine()
    per_context = iterations // contexts
    for context_id in range(contexts):
        machine.contexts[context_id].load_program(
            busy_program(per_context))
    machine.run(100_000)
    return machine.cycle


def run_replay_attack(fast_forward: bool, replays: int = 200,
                      tracer=None):
    """Run the replay-attack workload; return ``(cycles, report)``.

    The report snapshot (per-context stats, cache/TLB/walker counters)
    lets callers assert that the fast-forward scheduler is bit-exact
    against naive stepping, not merely cycle-equal.  Passing a
    *tracer* (an ``EventTracer``) attaches it for the whole run — the
    CI overhead check uses this to price tracing and to prove it does
    not perturb simulation results.
    """
    rep = Replayer(AttackEnvironment.build(
        machine_config=MachineConfig(
            core=CoreConfig(fast_forward=fast_forward))))
    if tracer is not None:
        rep.machine.attach_tracer(tracer)
    victim_proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(victim_proc, secret=1,
                                       divisions=2, multiplications=2)
    recipe = rep.module.provide_replay_handle(
        victim_proc, victim.handle_va + 0x20, name="throughput-replay",
        attack_function=replay_n_times(replays),
        walk_tuning=WalkTuning(upper=WalkLocation.PWC,
                               leaf=WalkLocation.DRAM),
        max_replays=10 ** 9)
    rep.launch_victim(victim_proc, victim.program)
    rep.arm(recipe)
    rep.run_until_victim_done(context_id=0, max_cycles=100_000_000)
    return rep.machine.cycle, machine_report(rep.machine, rep.kernel,
                                             rep.module)


def timed(fn, *args, **kwargs):
    """Run *fn* once; return ``(result, host_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, max(time.perf_counter() - start, 1e-9)


# ---------------------------------------------------------------------------
# Warm-start vs cold-start window workloads (repro.snapshot)
#
# MicroScope's unit of work is the *window*: one replayed fault site
# with its probes.  Historically every observation of a late window
# paid the full run from a cold platform; with checkpoint/rewind the
# shared prefix is simulated once and each trial replays only the
# window of interest — the O(N·full-run) -> O(setup + N·window)
# amortization the snapshot subsystem exists for.  Both workloads
# return the measured data so callers can assert that warm trials are
# bit-identical to the cold baseline.
# ---------------------------------------------------------------------------

AES_KEY = bytes(range(16))
AES_CIPHERTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
#: rk fault sites completed before the checkpoint; the measured window
#: is everything after (the fourth td0/rk site pair of round 1).
AES_PREFIX_RK_SITES = 3
AES_TARGET_RK_SITES = 4


def _aes_stepper():
    attack = AESCacheAttack(AES_KEY, AES_CIPHERTEXT)
    rep, _victim, stepper = attack._setup(prime_before_first=True)
    stepper.stop_after_rk_sites = AES_TARGET_RK_SITES
    return rep, stepper


def _probe_data(stepper):
    return [(p.step, p.kind, p.replay, p.latencies)
            for p in stepper.probes]


def run_aes_window_cold():
    """One cold observation of the fourth rk window: fresh platform,
    full §4.4 stepped run from the prologue."""
    clear_cache()
    rep, stepper = _aes_stepper()
    rep.machine.run(60_000_000, until=lambda _m: stepper.done)
    return _probe_data(stepper)


def make_aes_window_replayer():
    """Pay the shared prefix once — build, launch, step through the
    first three rk sites — checkpoint there, and return a trial
    callable that rewinds and measures only the final window."""
    clear_cache()
    rep, stepper = _aes_stepper()
    rep.machine.run(
        60_000_000,
        until=lambda _m: stepper.rk_sites >= AES_PREFIX_RK_SITES)
    rep.checkpoint()
    # The stepper's Python-side cursor at the checkpoint; rewinding
    # the platform resets the machine, so trials reset this too.
    mark = (stepper.site_counter, stepper._replay_at_site,
            len(stepper.probes))

    def warm_trial():
        rep.rewind()
        stepper.rk_sites = AES_PREFIX_RK_SITES
        stepper.site_counter, stepper._replay_at_site = mark[0], mark[1]
        stepper.done = False
        del stepper.probes[mark[2]:]
        rep.machine.run(60_000_000, until=lambda _m: stepper.done)
        return _probe_data(stepper)

    return warm_trial


def _fig10_result_data(result):
    """Everything Fig. 10 measures (cycles excluded: a warm trial's
    run() starts mid-simulation, so its relative cycle count differs
    while every measured value is identical)."""
    return (result.secret, result.samples, result.threshold,
            result.above_threshold, result.replays, result.verdict)


def run_fig10_cold(attack: PortContentionAttack, secret: int,
                   threshold: float):
    """One cold Fig. 10 panel: fresh platform, full measurement run."""
    clear_cache()
    return _fig10_result_data(attack.run(secret, threshold))


# ---------------------------------------------------------------------------
# Batched lockstep fleet workload (repro.batch)
#
# The sweep shape the fleet engine targets: one program, many lanes
# that differ only in data.  Each lane FNV-hashes a 64-word buffer of
# seed-derived random values over 40 passes — thousands of simulated
# cycles of genuinely lane-variant loads, multiplies and xors, so the
# fleet's taint overlay is exercised on every instruction rather than
# idling on invariant state.  All components are module-level so the
# FleetTrial pickles (process-pool scalar path) and fingerprints
# (content-addressed trial store).
# ---------------------------------------------------------------------------

FLEET_DATA_BASE = 0x0010_0000
FLEET_WORDS = 64
FLEET_PASSES = 40
FLEET_MAX_CYCLES = 10_000_000


def fleet_checksum_program(n_words: int = FLEET_WORDS,
                           passes: int = FLEET_PASSES):
    """FNV-1a style checksum over ``n_words`` 64-bit words, repeated
    ``passes`` times (r0 is never written: the always-zero operand)."""
    builder = ProgramBuilder("fleet-checksum")
    builder.li("r8", passes)
    builder.li("r3", 0xcbf29ce484222325)
    builder.li("r4", 0x100000001b3)
    builder.label("outer")
    builder.li("r1", FLEET_DATA_BASE)
    builder.li("r2", n_words)
    builder.label("loop")
    builder.load("r5", "r1", 0)
    builder.xor("r3", "r3", "r5")
    builder.mul("r3", "r3", "r4")
    builder.addi("r1", "r1", 8)
    builder.subi("r2", "r2", 1)
    builder.bne("r2", "r0", "loop")
    builder.subi("r8", "r8", 1)
    builder.bne("r8", "r0", "outer")
    builder.halt()
    return builder.build()


def fleet_lane_init(seed, params):
    rng = random.Random(seed)
    return LaneInit(mem=tuple((FLEET_DATA_BASE + 8 * i, 8,
                               rng.getrandbits(64))
                              for i in range(FLEET_WORDS)))


def fleet_extract(machine):
    context = machine.contexts[0]
    return (context.int_regs["r3"], machine.cycle,
            context.stats.retired)


FLEET_PLAN = FleetPlan(programs=((0, fleet_checksum_program()),),
                       lane_init=fleet_lane_init,
                       max_cycles=FLEET_MAX_CYCLES,
                       extract=fleet_extract)
FLEET_TRIAL = FleetTrial(FLEET_PLAN)


def fleet_lanes(n: int):
    """``(seed, params)`` pairs for an *n*-lane fleet."""
    return [(7000 + i, None) for i in range(n)]


def make_fig10_window_replayer(attack: PortContentionAttack,
                               secret: int, threshold: float,
                               prefix_fraction: float = 0.85):
    """Checkpoint a Fig. 10 panel *prefix_fraction* of the way through
    the Monitor's trace; each warm trial rewinds and measures the
    remaining samples (identical to the cold run's tail)."""
    clear_cache()
    # Reference run fixes the measured data and the Monitor's total
    # retired-instruction count, so the checkpoint lands at a
    # deterministic mid-run point.
    rep, recipe, monitor_proc, monitor, monitor_ctx = \
        attack.prepare(secret)
    reference = attack.finish(rep, recipe, monitor_proc, monitor,
                              monitor_ctx, secret, threshold)
    target = int(prefix_fraction * monitor_ctx.stats.retired)

    rep, recipe, monitor_proc, monitor, monitor_ctx = \
        attack.prepare(secret)
    rep.machine.run(
        attack.max_cycles,
        until=lambda _m: monitor_ctx.stats.retired >= target)
    rep.checkpoint()

    def warm_trial():
        rep.rewind()
        return _fig10_result_data(attack.finish(
            rep, recipe, monitor_proc, monitor, monitor_ctx, secret,
            threshold))

    return warm_trial, _fig10_result_data(reference)
