"""Table 1: characterisation of side-channel attacks on Intel SGX.

The paper classifies attacks by spatial granularity, temporal
resolution and noise, placing MicroScope alone in the fine-grain /
medium-high-resolution / no-noise cell.  This bench *measures* the
table's rows instead of quoting them: each attack model runs against
the same victim family and reports its achieved granularity,
single-run accuracy under a common probe-noise level, and the runs it
needs.
"""

from repro.baselines.controlled_channel import ControlledChannelAttack
from repro.baselines.prime_probe import AsyncPrimeProbeAttack
from repro.baselines.sgx_step import SGXStepAttack
from repro.core.attacks.loop_secret import LoopSecretAttack

from conftest import emit, render_table

SECRETS = [3, 11, 7, 2, 0, 14, 5, 9]
PROBE_NOISE = 0.10


def test_table1(once):
    def experiment():
        rows = []
        # Controlled channel [60]: page granularity, no noise.
        cc = ControlledChannelAttack()
        cc_page = all(cc.run(s).correct for s in (0, 1))
        cc_line = all(cc.run(s, same_page=True).guessed is None
                      for s in (0, 1))
        rows.append(["Controlled channel [60]", "4096 B (page)",
                     "per fault", "none",
                     "1.00" if cc_page else "fail",
                     "blind" if cc_line else "leaks", 1])
        # Async Prime+Probe [9]: fine grain, low resolution, noisy.
        pp = AsyncPrimeProbeAttack(probe_noise=PROBE_NOISE).run(SECRETS)
        rows.append(["Async Prime+Probe [9]", "64 B (line)",
                     "aggregate", "high",
                     f"{pp.sequence_accuracy:.2f}",
                     f"set recall {pp.set_recall:.2f}", ">100"])
        # SGX-Step-style stepping [57]/[40]: fine grain, high
        # resolution, needs multiple runs under noise.
        step1 = SGXStepAttack(probe_noise=PROBE_NOISE).run(SECRETS,
                                                           runs=1)
        step7 = SGXStepAttack(probe_noise=PROBE_NOISE).run(SECRETS,
                                                           runs=7)
        rows.append(["SGX-Step/CacheZoom [57,40]", "64 B (line)",
                     "per ~instruction", "medium",
                     f"{step1.combined_accuracy:.2f}",
                     f"{step7.combined_accuracy:.2f} @ 7 runs", ">1"])
        # MicroScope: fine grain, high resolution, denoised, one run.
        ms = LoopSecretAttack(probe_noise=PROBE_NOISE,
                              replays_per_iteration=5).run(SECRETS)
        rows.append(["MicroScope (this work)", "64 B (line)",
                     "per instruction (replay)", "none (denoised)",
                     f"{ms.accuracy:.2f}", "-", 1])
        return rows, step1, step7, ms

    rows, step1, step7, ms = once(experiment)
    table = render_table(
        f"Table 1 (measured): attacks on the same loop-secret victim, "
        f"probe noise {PROBE_NOISE:.0%}",
        ["attack", "spatial", "temporal", "noise",
         "1-run accuracy", "multi-run", "victim runs needed"],
        rows)
    emit("table1_taxonomy", table)
    assert ms.accuracy == 1.0
    assert ms.accuracy > step1.combined_accuracy
    assert step7.combined_accuracy >= step1.combined_accuracy
