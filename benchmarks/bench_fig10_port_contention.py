"""Figure 10: port-contention attack, Monitor latency distributions.

Paper result (Xeon E5-1630 v3, 10,000 samples):

* Fig. 10a — victim executes two multiplications: all but ~4 samples
  below the ~120-cycle threshold;
* Fig. 10b — victim executes two divisions: ~64 samples above the
  threshold (16x the mul case), making the two cases "clearly
  distinguishable".

This bench reproduces both panels on the simulator and prints the
latency histogram plus the above-threshold counts.
"""

from collections import Counter

from repro.core.attacks.port_contention import (
    PortContentionAttack,
    run_figure10,
)
from repro.harness import FaultPolicy, default_workers

from conftest import emit, full_scale, render_table


def _histogram(samples, threshold):
    buckets = Counter()
    for sample in samples:
        if sample > threshold:
            buckets["above threshold"] += 1
        else:
            buckets[f"{(sample // 10) * 10}-{(sample // 10) * 10 + 9}"] \
                += 1
    return sorted(buckets.items())


def test_figure10(once):
    measurements = 10_000 if full_scale() else 2500
    attack = PortContentionAttack(measurements=measurements)

    def experiment():
        # The two panels are independent simulations sharing only the
        # calibrated threshold; run them as a 2-worker sweep.
        panels = run_figure10(attack=attack,
                              workers=min(default_workers(), 2),
                              policy=FaultPolicy(max_attempts=2))
        return panels["mul"], panels["div"]

    mul, div = once(experiment)
    threshold = mul.threshold

    rows = []
    for label, result in (("mul (Fig. 10a)", mul), ("div (Fig. 10b)",
                                                    div)):
        rows.append([
            label, len(result.samples), f"{threshold:.0f}",
            result.above_threshold,
            f"{max(result.samples)}",
            result.replays,
            "div" if result.verdict else "mul",
            "yes" if result.correct else "NO",
        ])
    ratio = (div.above_threshold / max(mul.above_threshold, 1))
    table = render_table(
        "Figure 10: monitor latency samples (threshold ~ paper's 120c "
        "line; paper: 4 vs 64 over threshold, 16x)",
        ["victim", "samples", "threshold", "above", "max-lat",
         "replays", "verdict", "correct"],
        rows)
    table += (f"\n\nabove-threshold ratio div/mul: "
              f"{ratio if mul.above_threshold else 'inf'} "
              f"(paper: ~16x)")
    emit("fig10_port_contention", table)

    assert mul.correct and div.correct
    assert div.above_threshold > 4 * max(mul.above_threshold, 1)
