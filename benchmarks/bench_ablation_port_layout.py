"""Ablation (microarchitectural): why the divider channel works.

The §4.3 signal exists because the divider is a *single, non-pipelined,
SMT-shared* unit.  This bench re-runs the Fig. 10 experiment on
hypothetical cores to isolate each property:

* default core — one non-pipelined divider on port 0;
* dual-divider core — a second divider on port 5 halves the structural
  hazard;
* pipelined-divider core — a divider that accepts one op per cycle
  removes occupancy altogether.

The above-threshold evidence should collapse accordingly — a defense
hint the paper's §8 does not pursue (hardware cost), quantified here.
"""

from repro.core.attacks.port_contention import PortContentionAttack
from repro.cpu.config import CoreConfig, PortConfig
from repro.config import MachineConfig
from repro.core.module import MicroScopeConfig
from repro.core.replayer import AttackEnvironment, Replayer

from conftest import emit, render_table


def _ports_with_second_divider():
    return (
        PortConfig("p0", frozenset({"alu", "div"})),
        PortConfig("p1", frozenset({"alu", "mul", "fpalu"})),
        PortConfig("p5", frozenset({"alu", "fpalu", "div"})),
        PortConfig("p6", frozenset({"alu", "branch"})),
        PortConfig("p2", frozenset({"load"})),
        PortConfig("p3", frozenset({"load"})),
        PortConfig("p4", frozenset({"store"})),
    )


class _VariantAttack(PortContentionAttack):
    """PortContentionAttack on a custom core configuration."""

    def __init__(self, core_config: CoreConfig, **kwargs):
        super().__init__(**kwargs)
        self._core_config = core_config

    def _build_environment(self):
        self._core_config.rdtsc_jitter = self.rdtsc_jitter
        env = AttackEnvironment.build(
            machine_config=MachineConfig(core=self._core_config),
            module_config=MicroScopeConfig(
                fault_handler_cost=self.fault_handler_cost))
        return Replayer(env)


def test_port_layout_sweep(once):
    measurements = 1500

    def experiment():
        rows = []
        variants = [
            ("single non-pipelined divider (real)", CoreConfig()),
            ("two non-pipelined dividers",
             CoreConfig(ports=_ports_with_second_divider())),
            ("pipelined divider",
             CoreConfig(non_pipelined=frozenset())),
        ]
        for label, core_config in variants:
            attack = _VariantAttack(core_config,
                                    measurements=measurements)
            threshold = attack.calibrate(samples=600)
            div = attack.run(secret=1, threshold=threshold)
            mul = attack.run(secret=0, threshold=threshold)
            rows.append([label, f"{threshold:.0f}",
                         div.above_threshold, mul.above_threshold,
                         "yes" if div.correct and mul.correct
                         else "NO"])
        return rows

    rows = once(experiment)
    table = render_table(
        f"Port-layout ablation ({measurements} monitor samples): the "
        f"attack needs the divider to be scarce and occupying",
        ["core variant", "threshold", "above-threshold (div victim)",
         "above-threshold (mul victim)", "secret recovered"],
        rows)
    emit("ablation_port_layout", table)
    single, dual, pipelined = (row[2] for row in rows)
    assert single >= dual >= 0
    assert single > pipelined
