"""CI crash-recovery smoke check for the experiment job service.

The service's headline guarantee: kill the server at any instant,
restart it on the same state directory, and the job completes with
**zero recomputed cells** and a **byte-identical** ``result.json``.
This script enforces exactly that, end to end, against real server
processes:

1. boot ``python -m repro serve`` on a fresh state dir, submit a
   2×2 matrix job, and SIGKILL the server the moment the first cell
   lands in the journal (genuinely mid-run);
2. restart the server on the same state dir; boot recovery must
   re-enqueue the job and run it to completion;
3. assert from the journal that every cell was journalled exactly
   once (a rerun would append a second record for the same index) and
   from ``metrics.json`` that the resumed run executed exactly
   ``total - prekill`` cells — the pre-kill cells resolved as
   ``journal``, not ``ok``;
4. run the same spec uninterrupted on a second, completely separate
   state dir (own trial store) and require the two ``result.json``
   files to be byte-identical.

The kill is timing-sensitive (the job must not finish before the
signal lands), so the scenario retries a few times; a job that
completed pre-kill is a skipped round, not a failure.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

ATTACKS = ("cf-cache", "loop-secret")
DEFENSES = ("none", "fences")


def log(message: str) -> None:
    print(f"[service-smoke] {message}", flush=True)


def start_server(state_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    # A killed server leaves its endpoint file behind; drop it so we
    # wait for the *new* process's binding, not the ghost's.
    try:
        (state_dir / "endpoint.json").unlink()
    except OSError:
        pass
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir)],
        env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 30
    endpoint = state_dir / "endpoint.json"
    while time.monotonic() < deadline:
        if endpoint.exists() and process.poll() is None:
            return process
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited {process.returncode} before binding")
        time.sleep(0.05)
    process.kill()
    raise RuntimeError("server never wrote endpoint.json")


def journal_indices(journal: Path):
    indices = []
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("kind") == "trial":
            indices.append(record["index"])
    return indices


def run_uninterrupted(spec) -> bytes:
    """The reference: same spec, fresh state dir, no kill."""
    from repro.service import ServiceClient, job_id
    with tempfile.TemporaryDirectory(prefix="svc-ref-") as ref:
        state = Path(ref) / "state"
        server = start_server(state)
        try:
            client = ServiceClient(state_dir=state)
            submitted = client.submit(spec)
            status = client.wait(submitted["job"], timeout=120)
            assert status["state"] == "done", status
            result = (state / "jobs" / job_id(spec)
                      / "result.json").read_bytes()
        finally:
            server.kill()
            server.wait(timeout=10)
    return result


def interrupted_round(spec, state: Path):
    """One kill-and-recover attempt.  Returns the pre-kill journalled
    cell count, or None when the job won the race and finished."""
    from repro.service import ServiceClient, job_id
    jid = job_id(spec)
    journal = state / "jobs" / jid / "journal.jsonl"
    server = start_server(state)
    try:
        client = ServiceClient(state_dir=state)
        submitted = client.submit(spec)
        assert submitted["job"] == jid, (submitted, jid)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            done = len(journal_indices(journal)) \
                if journal.exists() else 0
            if done:
                break
            time.sleep(0.002)
    finally:
        # SIGKILL: no cleanup, no journal flush courtesy — the
        # crash-recovery contract must not depend on a tidy exit.
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=10)
    prekill = journal_indices(journal)
    total = len(ATTACKS) * len(DEFENSES)
    if len(prekill) >= total:
        return None  # finished before the kill landed; retry
    log(f"killed server with {len(prekill)}/{total} cells journalled")
    return len(prekill)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5,
                        help="kill-timing attempts before giving up")
    args = parser.parse_args()
    sys.path.insert(0, str(SRC))
    from repro.service import JobSpec, ServiceClient, job_id

    spec = JobSpec(attacks=ATTACKS, defenses=DEFENSES, workers=2)
    jid = job_id(spec)
    total = len(ATTACKS) * len(DEFENSES)

    prekill = None
    for attempt in range(args.rounds):
        with tempfile.TemporaryDirectory(prefix="svc-smoke-") as tmp:
            state = Path(tmp) / "state"
            prekill = interrupted_round(spec, state)
            if prekill is None:
                log(f"round {attempt}: job finished before the kill; "
                    f"retrying")
                continue

            # --- restart on the same state dir ----------------------
            server = start_server(state)
            try:
                client = ServiceClient(state_dir=state)
                status = client.wait(jid, timeout=120)
                assert status["state"] == "done", status
                job_dir = state / "jobs" / jid
                result = (job_dir / "result.json").read_bytes()
                indices = journal_indices(job_dir / "journal.jsonl")
                metrics = json.loads(
                    (job_dir / "metrics.json").read_text())
            finally:
                server.kill()
                server.wait(timeout=10)

            # Zero reruns, part 1: every cell journalled exactly once.
            assert sorted(indices) == list(range(total)), (
                f"journal must hold each cell exactly once, "
                f"got indices {sorted(indices)}")
            # Zero reruns, part 2: the resumed shards executed only
            # the missing cells; pre-kill cells resolved as journal.
            executed = sum(
                shard["resolutions"]["ok"]
                + shard["resolutions"]["cached"]
                for shard in metrics["shards"])
            assert executed == total - prekill, (
                f"resumed run executed {executed} cells, expected "
                f"{total - prekill} (prekill={prekill})")
            log(f"resume executed {executed} cells "
                f"({prekill} served from the journal)")

            # Byte-identical to an uninterrupted run.
            reference = run_uninterrupted(spec)
            assert result == reference, (
                "interrupted-and-resumed result.json differs from "
                "the uninterrupted run")
            log(f"result.json byte-identical across kill/restart "
                f"({len(result)} bytes)")
            log("OK")
            return 0

    log(f"could not land a mid-run kill in {args.rounds} rounds")
    return 1


if __name__ == "__main__":
    sys.exit(main())
