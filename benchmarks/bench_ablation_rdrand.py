"""Ablation (§7.2): the RDRAND integrity attack and its fence.

Paper narrative, measured here:

* without the fence, selective replay biases the victim's committed
  random values completely;
* with Intel's (incidental) fence, the parity never leaks in time and
  the attack collapses to fair coin flips;
* the TSX replay handle resurrects the attack *despite* the fence —
  "fencing RDRAND will no longer be effective."
"""

from repro.core.attacks.rdrand import RdrandBiasAttack
from repro.core.attacks.tsx_replay import TSXReplayAttack

from conftest import emit, full_scale, render_table


def test_rdrand_bias(once):
    trials = 40 if full_scale() else 16

    def experiment():
        unfenced = RdrandBiasAttack(trials=trials, fenced=False).run()
        fenced = RdrandBiasAttack(trials=trials, fenced=True,
                                  max_replays_per_trial=20).run()
        tsx = TSXReplayAttack(trials=trials, fenced=True).run()
        return unfenced, fenced, tsx

    unfenced, fenced, tsx = once(experiment)
    rows = [
        ["page-fault handle, no fence", f"{unfenced.bias:.2f}",
         unfenced.total_replays, unfenced.blind_releases],
        ["page-fault handle, fenced RDRAND", f"{fenced.bias:.2f}",
         fenced.total_replays, fenced.blind_releases],
        ["TSX-abort handle, fenced RDRAND", f"{tsx.bias:.2f}",
         tsx.total_aborts, 0],
    ]
    table = render_table(
        f"RDRAND bias attack (§7.2), {trials} victim sessions, "
        f"target parity = even",
        ["configuration", "bias (1.0 = fully biased)",
         "replays/aborts", "blind releases"],
        rows)
    table += ("\n\npaper: the fence stops the page-fault variant; "
              "TSX replays bypass it")
    emit("ablation_rdrand", table)
    assert unfenced.bias == 1.0
    assert fenced.bias < 0.8
    assert tsx.bias == 1.0
