"""Table 2: the MicroScope user API.

Exercises every operation of the §5.2.3 interface end-to-end and
prints the table with a measured effect per operation — the bench form
of an API conformance test.
"""

from repro.core.recipes import replay_n_times
from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.program import ProgramBuilder

from conftest import emit, render_table


def test_table2_api(once):
    def experiment():
        rep = Replayer(AttackEnvironment.build())
        process = rep.create_victim_process(enclave=False)
        data = process.alloc(4096, "target")
        pivot = process.alloc(4096, "pivot")
        monitor = process.alloc(4096, "monitored")
        process.write(data, 7)
        rows = []

        # provide_replay_handle
        recipe = rep.module.provide_replay_handle(
            process, data, attack_function=replay_n_times(3))
        rows.append(["provide_replay_handle", "addr",
                     "Provide a replay handle",
                     f"recipe {recipe.name!r} registered"])
        # provide_pivot
        rep.module.provide_pivot(recipe, pivot)
        rows.append(["provide_pivot", "addr", "Provide a pivot",
                     f"pivot page {pivot:#x} attached"])
        # provide_monitor_addr
        rep.module.provide_monitor_addr(recipe, monitor)
        rows.append(["provide_monitor_addr", "addr",
                     "Provide address to monitor",
                     f"{len(recipe.monitor_addrs)} monitored address"])
        # initiate_page_walk with every length
        latencies = []
        for length in (1, 2, 3, 4):
            rep.module.initiate_page_walk(process, data, length)
            walk = rep.machine.walker.walk(
                process.pcid, process.root_frame, data)
            latencies.append(walk.latency)
        rows.append(["initiate_page_walk", "addr, length",
                     "Initiate a walk of length",
                     "lengths 1-4 -> " +
                     "/".join(str(l) for l in latencies) + " cycles"])
        # initiate_page_fault drives an actual replay loop.
        program = (ProgramBuilder()
                   .li("r1", data).load("r2", "r1", 0).halt().build())
        rep.launch_victim(process, program)
        rep.arm(recipe)   # uses initiate_page_fault internally
        rep.run_until_victim_done()
        rows.append(["initiate_page_fault", "addr",
                     "Initiate a page fault",
                     f"{recipe.replays} replays then release; victim "
                     f"read {rep.machine.contexts[0].int_regs['r2']}"])
        return rows, latencies, recipe

    rows, latencies, recipe = once(experiment)
    table = render_table(
        "Table 2: MicroScope user API, exercised",
        ["function", "operands", "paper semantics", "measured effect"],
        rows)
    emit("table2_api", table)
    assert latencies == sorted(latencies)
    assert recipe.replays == 3
