"""Shared helpers for the benchmark/experiment harness.

Every benchmark regenerates one table or figure of the paper.  Results
are printed as text tables (run with ``pytest benchmarks/
--benchmark-only -s`` to see them) and appended to
``benchmarks/results/`` so EXPERIMENTS.md can cite stable artefacts.

Scale: set ``REPRO_FULL_SCALE=1`` to run the paper's full sample
counts (e.g. 10,000 monitor measurements for Fig. 10); the default is
a faster scaled-down configuration with identical shape.
"""

import json
import os
from pathlib import Path

import pytest

from repro.harness import collect_sweep_reports
from repro.observability import collect_machines, merge_dumps

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "") == "1"


def render_table(title, headers, rows) -> str:
    """Plain-text table renderer."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in columns[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, text: str):
    """Print a result block and persist it under benchmarks/results."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict):
    """Persist a machine-readable result under benchmarks/results.

    Committed JSON artefacts give CI a stable baseline to diff
    against (see .github/workflows/ci.yml) and make the performance
    trajectory queryable across PRs."""
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(rendered + "\n")


def load_json(name: str):
    """Read a previously emitted JSON artefact, or None."""
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


@pytest.fixture(autouse=True)
def _metrics_artifact(request):
    """Every benchmark emits a metrics JSON alongside its table.

    All machines built during the test are observed (via the
    machine-collector hook) and their registry dumps sum-merged into
    ``benchmarks/results/metrics/<test>.json``.  Machines built in
    worker *processes* (the parallel sweep harness) are not visible
    here; their counters stay worker-local.  Sweep-level accounting
    *is* visible: every resilient sweep's
    :class:`~repro.harness.SweepReport` (attempt counts, failure
    causes, wall time) is collected supervisor-side and lands under
    the ``"sweeps"`` key.
    """
    with collect_machines() as machines, \
            collect_sweep_reports() as sweep_reports:
        yield
    if not machines and not sweep_reports:
        return
    payload = {
        "test": request.node.name,
        "machines": len(machines),
        "metrics": merge_dumps([m.metrics.dump() for m in machines]),
        "sweeps": [report.to_dict() for report in sweep_reports],
    }
    out_dir = RESULTS_DIR / "metrics"
    out_dir.mkdir(parents=True, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-_." else "_"
                   for c in request.node.name)
    (out_dir / f"{safe}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (these experiments
    are minutes-scale simulations, not microbenchmarks)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
