"""CI throughput smoke check.

Measures simulated-cycles/host-second on the replay-attack workload
(fast-forward on, the configuration experiments actually use) and on
the single-context spin loop, then compares against the committed
baseline in ``benchmarks/results/simulator_throughput.json``.  Exits
non-zero when either rate regresses by more than the allowed factor
(default 2x — CI runners are noisy; the gate is for cliffs, not
percent drift).

Usage::

    PYTHONPATH=src python benchmarks/ci_throughput_smoke.py \
        [--baseline benchmarks/results/simulator_throughput.json] \
        [--max-regression 2.0]
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from throughput_workloads import run_replay_attack, run_spin, timed  # noqa: E402

#: Baseline keys checked, mapped to a measurement callable.
CHECKS = {
    "replay_attack_fast_forward":
        lambda: timed(run_replay_attack, True, 200),
    "single_context_spin": lambda: timed(run_spin, 5000, 1),
}


def measure() -> dict:
    rates = {}
    for key, runner in CHECKS.items():
        result, host = runner()
        cycles = result[0] if isinstance(result, tuple) else result
        rates[key] = cycles / host
    return rates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "results"
                    / "simulator_throughput.json"))
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to compare")
        return 0
    baseline = json.loads(baseline_path.read_text())
    baseline_rates = baseline.get("cycles_per_host_second", {})

    rates = measure()
    failed = False
    for key, rate in rates.items():
        reference = baseline_rates.get(key)
        if not reference:
            print(f"{key}: {rate:,.0f} c/s (no baseline entry; skipped)")
            continue
        ratio = reference / rate
        status = "OK"
        if ratio > args.max_regression:
            status = f"FAIL (>{args.max_regression:.1f}x regression)"
            failed = True
        print(f"{key}: {rate:,.0f} c/s vs baseline {reference:,.0f} "
              f"({ratio:.2f}x slower) {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
