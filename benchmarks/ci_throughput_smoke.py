"""CI throughput smoke check.

Measures simulated-cycles/host-second on the replay-attack workload
(fast-forward on, the configuration experiments actually use) and on
the single-context spin loop, then compares against the committed
baseline in ``benchmarks/results/simulator_throughput.json``.  Exits
non-zero when either rate regresses by more than the allowed factor
(default 2x — CI runners are noisy; the gate is for cliffs, not
percent drift).

Also runs a snapshot round-trip smoke: take a mid-run snapshot of the
replay-attack workload, run to completion, mutate nothing further,
restore, run again, and require the machine report to be identical.
This is the functional contract the warm-start experiment drivers
depend on, checked on every CI run in a few hundred milliseconds.

Finally, a tracing overhead check: the replay-attack workload runs
once with no tracer (the configuration the regression gate prices)
and once with an ``EventTracer`` attached.  Both runs must produce a
bit-identical machine report — tracing observes, it never perturbs —
and the measured overhead is written to
``benchmarks/results/tracing_overhead.json`` so its trajectory is
visible across PRs.  Only the off-vs-baseline comparison gates;
tracing-on cost is reported, not gated.

A memoization check covers both levels of the ``repro.memo`` compute
cache: a replay-window served from :class:`~repro.memo.WindowMemo`
and an evaluation matrix served from a warm
:class:`~repro.memo.TrialStore` must each be bit-identical to their
cold runs *and* beat the minimum speedups (2x / 5x); the measured
numbers are written to
``benchmarks/results/memoization_throughput.json``.

A batch-engine check runs the fleet checksum sweep (32 lanes of the
same program over lane-variant data) three ways — scalar machines one
by one, a :class:`~repro.batch.MachineFleet` on the pure-Python lane
engine, and (when NumPy is importable) on the NumPy lane engine.
Every fleet lane must be bit-identical to its scalar run, the two
engines must agree with each other, and each engine must beat the
minimum single-process sweep speedup (5x).  Measurements land in
``benchmarks/results/batch_throughput.json``.

Usage::

    PYTHONPATH=src python benchmarks/ci_throughput_smoke.py \
        [--baseline benchmarks/results/simulator_throughput.json] \
        [--max-regression 2.0]
"""

import argparse
import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from throughput_workloads import run_replay_attack, run_spin, timed  # noqa: E402

#: Baseline keys checked, mapped to a measurement callable.
CHECKS = {
    "replay_attack_fast_forward":
        lambda: timed(run_replay_attack, True, 200),
    "single_context_spin": lambda: timed(run_spin, 5000, 1),
}


def measure() -> dict:
    rates = {}
    for key, runner in CHECKS.items():
        result, host = runner()
        cycles = result[0] if isinstance(result, tuple) else result
        rates[key] = cycles / host
    return rates


def snapshot_roundtrip_smoke() -> bool:
    """Take → mutate → restore → compare on a real attack platform.

    Checkpoints a launched control-flow victim, runs the replay attack
    to completion (heavily mutating every subsystem), rewinds, runs
    again, and requires the two machine reports to be identical.
    Returns True on success.
    """
    from repro.core.recipes import (
        WalkLocation, WalkTuning, replay_n_times)
    from repro.core.replayer import AttackEnvironment, Replayer
    from repro.reporting import machine_report
    from repro.victims.control_flow import setup_control_flow_victim

    rep = Replayer(AttackEnvironment.build())
    proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(proc, secret=1)
    recipe = rep.module.provide_replay_handle(
        proc, victim.handle_va + 0x20, name="smoke-replay",
        attack_function=replay_n_times(20),
        walk_tuning=WalkTuning(upper=WalkLocation.PWC,
                               leaf=WalkLocation.DRAM))
    rep.launch_victim(proc, victim.program)
    rep.arm(recipe)
    rep.checkpoint()

    def run_to_done() -> dict:
        rep.run_until_victim_done(context_id=0, max_cycles=10_000_000)
        return dataclasses.asdict(
            machine_report(rep.machine, rep.kernel, rep.module))

    first = run_to_done()
    rep.rewind()
    second = run_to_done()
    if second != first:
        print("snapshot round-trip: FAIL (report diverged after rewind)")
        return False
    if first["contexts"][0]["retired"] == 0:
        print("snapshot round-trip: FAIL (workload retired nothing)")
        return False
    print("snapshot round-trip: OK (rewound run is bit-identical)")
    return True


def tracing_overhead_check() -> bool:
    """Price tracing and prove it is purely observational.

    Runs the replay-attack workload tracing-off and tracing-on,
    requires bit-identical machine reports (and a non-empty trace),
    and persists both rates plus the slowdown factor as a JSON
    artifact.  Returns True on success.
    """
    import dataclasses

    from repro.observability import EventTracer

    (result_off, host_off) = timed(run_replay_attack, True, 200)
    tracer = EventTracer(capacity=1 << 15)
    (result_on, host_on) = timed(run_replay_attack, True, 200, tracer)
    cycles_off, report_off = result_off
    cycles_on, report_on = result_on

    ok = True
    if (cycles_off != cycles_on
            or dataclasses.asdict(report_off)
            != dataclasses.asdict(report_on)):
        print("tracing overhead: FAIL (tracing perturbed the "
              "simulation results)")
        ok = False
    if tracer.total_emitted == 0:
        print("tracing overhead: FAIL (tracer attached but captured "
              "no events)")
        ok = False

    rate_off = cycles_off / host_off
    rate_on = cycles_on / host_on
    slowdown = rate_off / rate_on if rate_on else float("inf")
    payload = {
        "workload": "replay_attack_fast_forward",
        "cycles": cycles_off,
        "tracing_off_cycles_per_host_second": rate_off,
        "tracing_on_cycles_per_host_second": rate_on,
        "tracing_slowdown_factor": slowdown,
        "events_emitted": tracer.total_emitted,
        "events_dropped": tracer.dropped,
        "bit_identical": ok,
    }
    out = Path(__file__).parent / "results" / "tracing_overhead.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if ok:
        print(f"tracing overhead: OK ({slowdown:.2f}x slowdown with "
              f"{tracer.total_emitted} events; results bit-identical)")
    return ok


def memoization_check(min_window_speedup: float = 2.0,
                      min_store_speedup: float = 5.0) -> bool:
    """Prove both memoization levels are sound and actually fast.

    Level 1: the same replay window runs cold and then from a
    :class:`~repro.memo.WindowMemo` hit; the machine report, recipe
    progress and metrics dump must be bit-identical, and the hit must
    be at least *min_window_speedup* faster.  Level 2: a small
    evaluation matrix runs cold into a fresh ``TrialStore`` and then
    warm; the sorted-JSON serialization must be byte-identical and
    the warm run at least *min_store_speedup* faster.  Measurements
    land in ``benchmarks/results/memoization_throughput.json``.
    Returns True on success.
    """
    import dataclasses
    import tempfile
    import time

    from repro.core.recipes import (
        WalkLocation, WalkTuning, replay_n_times)
    from repro.core.replayer import AttackEnvironment, Replayer
    from repro.evaluation import MatrixRunner
    from repro.memo import TrialStore, WindowMemo
    from repro.reporting import machine_report
    from repro.victims.control_flow import setup_control_flow_victim

    ok = True

    # --- Level 1: replay-window memoization -------------------------------
    memo = WindowMemo()
    rep = Replayer(AttackEnvironment.build(), memo=memo)
    proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(proc, secret=1)
    recipe = rep.module.provide_replay_handle(
        proc, victim.handle_va + 0x20, name="memo-smoke",
        attack_function=replay_n_times(20),
        walk_tuning=WalkTuning(upper=WalkLocation.PWC,
                               leaf=WalkLocation.DRAM))
    rep.launch_victim(proc, victim.program)
    rep.arm(recipe)
    rep.checkpoint()

    def observe(cycles):
        return (cycles, recipe.replays, list(recipe.probe_log),
                dataclasses.asdict(machine_report(
                    rep.machine, rep.kernel, rep.module)),
                rep.machine.metrics.dump())

    t0 = time.perf_counter()
    cold_window = observe(rep.run_window(recipe))
    window_cold_s = time.perf_counter() - t0
    rep.rewind()
    t0 = time.perf_counter()
    warm_window = observe(rep.run_window(recipe))
    window_warm_s = time.perf_counter() - t0
    window_speedup = window_cold_s / max(window_warm_s, 1e-9)
    window_identical = (warm_window == cold_window
                        and memo.counts()["hits"] == 1)
    if not window_identical:
        print("memoization: FAIL (window hit diverged from cold run)")
        ok = False
    elif window_speedup < min_window_speedup:
        print(f"memoization: FAIL (window hit only "
              f"{window_speedup:.1f}x faster; need "
              f">={min_window_speedup:.1f}x)")
        ok = False

    # --- Level 2: content-addressed trial store ---------------------------
    overrides = {"port-contention": {"measurements": 200,
                                     "calibrate_samples": 200}}
    with tempfile.TemporaryDirectory() as cache_dir:
        store = TrialStore(cache_dir)

        def run_matrix():
            return MatrixRunner(attacks=("port-contention",),
                                defenses=("none", "fences"),
                                overrides=overrides, workers=1,
                                store=store,
                                label="memo-smoke-matrix").run()

        t0 = time.perf_counter()
        cold_matrix = run_matrix()
        store_cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_matrix = run_matrix()
        store_warm_s = time.perf_counter() - t0
    store_speedup = store_cold_s / max(store_warm_s, 1e-9)
    as_bytes = lambda m: json.dumps(  # noqa: E731
        m.to_dict(), indent=2, sort_keys=True)
    store_identical = (as_bytes(warm_matrix) == as_bytes(cold_matrix)
                       and store.counts()["hits"] == 2)
    if not store_identical:
        print("memoization: FAIL (warm matrix diverged from cold run)")
        ok = False
    elif store_speedup < min_store_speedup:
        print(f"memoization: FAIL (warm store only "
              f"{store_speedup:.1f}x faster; need "
              f">={min_store_speedup:.1f}x)")
        ok = False

    payload = {
        "window": {
            "workload": "control-flow replay window (20 replays)",
            "cold_seconds": window_cold_s,
            "warm_seconds": window_warm_s,
            "speedup": window_speedup,
            "min_speedup": min_window_speedup,
            "bit_identical": window_identical,
        },
        "trial_store": {
            "workload": "1x2 evaluation matrix, port-contention",
            "cold_seconds": store_cold_s,
            "warm_seconds": store_warm_s,
            "speedup": store_speedup,
            "min_speedup": min_store_speedup,
            "bit_identical": store_identical,
        },
    }
    out = Path(__file__).parent / "results" / "memoization_throughput.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if ok:
        print(f"memoization: OK (window hit {window_speedup:.1f}x, "
              f"warm store {store_speedup:.1f}x; both bit-identical)")
    return ok


def batch_throughput_check(min_speedup: float = 5.0,
                           lanes: int = 32) -> bool:
    """Prove the batch engine is bit-exact and actually fast.

    Runs the fleet checksum sweep scalar (one machine per lane, one
    process — the baseline ``backend="batch"`` replaces) and as one
    :class:`~repro.batch.MachineFleet` per available lane engine.
    Each engine must produce lane outcomes bit-identical to the
    scalar runs and be at least *min_speedup* times faster than the
    scalar loop.  Measurements land in
    ``benchmarks/results/batch_throughput.json``.  Returns True on
    success.
    """
    import os

    from repro.batch import MachineFleet, make_ops, run_lane_scalar
    from throughput_workloads import (
        FLEET_PASSES, FLEET_PLAN, FLEET_WORDS, fleet_lanes)

    lane_specs = fleet_lanes(lanes)

    def run_scalar_sweep():
        return [run_lane_scalar(FLEET_PLAN, seed, params)
                for seed, params in lane_specs]

    scalar_results, scalar_s = timed(run_scalar_sweep)
    cycles_per_lane = scalar_results[0][1]

    engines = ["pure"]
    if not os.environ.get("REPRO_NO_NUMPY"):
        try:
            import numpy  # noqa: F401
            engines.append("numpy")
        except ImportError:
            pass

    ok = True
    measured = {}
    for engine in engines:
        fleet = MachineFleet(FLEET_PLAN, lane_specs,
                             ops=make_ops(engine))
        outcomes, fleet_s = timed(fleet.run)
        identical = all(
            outcome.error is None and outcome.result == reference
            for outcome, reference in zip(outcomes, scalar_results))
        speedup = scalar_s / fleet_s
        measured[engine] = {
            "seconds": fleet_s,
            "lanes_per_host_second": lanes / fleet_s,
            "speedup": speedup,
            "bit_identical": identical,
            "peeled_lanes": fleet.stats["peeled"],
        }
        if not identical:
            print(f"batch throughput: FAIL ({engine} engine diverged "
                  f"from the scalar sweep)")
            ok = False
        elif speedup < min_speedup:
            print(f"batch throughput: FAIL ({engine} engine only "
                  f"{speedup:.1f}x faster than the scalar sweep; "
                  f"need >={min_speedup:.1f}x)")
            ok = False

    payload = {
        "workload": (f"fnv checksum fleet, {FLEET_WORDS} words x "
                     f"{FLEET_PASSES} passes"),
        "lanes": lanes,
        "simulated_cycles_per_lane": cycles_per_lane,
        "scalar_seconds": scalar_s,
        "scalar_lanes_per_host_second": lanes / scalar_s,
        "engines": measured,
        "min_speedup": min_speedup,
    }
    out = Path(__file__).parent / "results" / "batch_throughput.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if ok:
        summary = ", ".join(
            f"{engine} {stats['speedup']:.1f}x"
            for engine, stats in measured.items())
        print(f"batch throughput: OK ({lanes} lanes, {summary}; all "
              f"lanes bit-identical to scalar)")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "results"
                    / "simulator_throughput.json"))
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)

    failed = not snapshot_roundtrip_smoke()
    failed = not tracing_overhead_check() or failed
    failed = not memoization_check() or failed
    failed = not batch_throughput_check() or failed

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to compare")
        return 1 if failed else 0
    baseline = json.loads(baseline_path.read_text())
    baseline_rates = baseline.get("cycles_per_host_second", {})

    rates = measure()
    for key, rate in rates.items():
        reference = baseline_rates.get(key)
        if not reference:
            print(f"{key}: {rate:,.0f} c/s (no baseline entry; skipped)")
            continue
        ratio = reference / rate
        status = "OK"
        if ratio > args.max_regression:
            status = f"FAIL (>{args.max_regression:.1f}x regression)"
            failed = True
        print(f"{key}: {rate:,.0f} c/s vs baseline {reference:,.0f} "
              f"({ratio:.2f}x slower) {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
