"""Ablation (§6.1): how few divide instructions can be detected?

Paper: "our attack can detect the presence or absence of as few as two
divide instructions ... With further tuning, we believe we will be
able to reliably detect one divide instruction."

Swept here: victims executing 0, 1, 2 and 4 divides per replay window,
reporting the above-threshold counts each produces.
"""

from repro.core.attacks.port_contention import PortContentionAttack

from conftest import emit, full_scale, render_table


def test_divide_count_sweep(once):
    measurements = 6000 if full_scale() else 1500

    def experiment():
        rows = []
        base = PortContentionAttack(measurements=measurements)
        threshold = base.calibrate()
        for divisions in (0, 1, 2, 4):
            attack = PortContentionAttack(
                measurements=measurements,
                divisions=max(divisions, 1))
            if divisions == 0:
                result = attack.run(secret=0, threshold=threshold)
            else:
                result = attack.run(secret=1, threshold=threshold)
            rows.append([divisions, result.above_threshold,
                         result.replays,
                         "div" if result.verdict else "mul"])
        return threshold, rows

    threshold, rows = once(experiment)
    table = render_table(
        f"Divide-count ablation ({measurements} monitor samples, "
        f"threshold {threshold:.0f})",
        ["divides in victim", "samples above threshold", "replays",
         "verdict"],
        rows)
    table += ("\n\npaper: 2 divides reliably detected; 1 divide is "
              "the 'further tuning' frontier")
    emit("ablation_divide_count", table)
    by_count = {row[0]: row[1] for row in rows}
    assert by_count[2] > by_count[0]
    assert by_count[4] >= by_count[2]
    assert by_count[2] >= 3       # two divides: reliably visible
