"""Ablation (§4.1.2): page-walk duration tuning.

Paper claim: "The Replayer can tune the duration of the page walk time
to take from a few cycles to over one thousand cycles, by ensuring
that the desired page table entries are either present or absent from
the cache hierarchy."

Swept here: every (upper, leaf) placement, reporting walk latency and
the resulting speculation-window size in victim instructions.
"""

from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    WalkLocation,
    WalkTuning,
)
from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.program import ProgramBuilder

from conftest import emit, render_table


def _window_victim(process, handle_va, work_va):
    """A victim with a long run of independent loads after the handle
    so the window size is measurable in executed instructions."""
    b = ProgramBuilder("window-probe")
    b.li("r1", handle_va)
    b.li("r2", work_va)
    b.load("r3", "r1", 0, comment="replay-handle")
    for i in range(90):
        b.load("r4", "r2", (i % 60) * 64)
    b.halt()
    return b.build()


def _measure(tuning):
    rep = Replayer(AttackEnvironment.build())
    process = rep.create_victim_process(enclave=False)
    handle_va = process.alloc(4096, "handle")
    work_va = process.alloc(4096, "work")
    program = _window_victim(process, handle_va, work_va)
    issued = [0]

    def hook(context, entry):
        if context.context_id == 0 and entry.instr.is_load \
                and entry.addr is not None and entry.addr >= work_va:
            issued[0] += 1

    rep.machine.core.issue_hooks.append(hook)
    walk_latency = [0]

    def attack_fn(event):
        return ReplayDecision(ReplayAction.RELEASE)

    recipe = rep.module.provide_replay_handle(
        process, handle_va, attack_function=attack_fn,
        walk_tuning=tuning)
    rep.launch_victim(process, program)
    rep.arm(recipe)
    # Capture the handle's actual walk latency from the core.
    rep.machine.run(20_000,
                    until=lambda m: recipe.replays >= 1)
    window = issued[0]
    rep.run_until_victim_done()
    return window


def test_walk_tuning_sweep(once):
    def experiment():
        rep = Replayer(AttackEnvironment.build())
        process = rep.create_victim_process(enclave=False)
        probe_va = process.alloc(4096, "probe")
        rows = []
        sweeps = [
            (WalkLocation.PWC, WalkLocation.L1),
            (WalkLocation.PWC, WalkLocation.L2),
            (WalkLocation.PWC, WalkLocation.L3),
            (WalkLocation.PWC, WalkLocation.DRAM),
            (WalkLocation.L1, WalkLocation.DRAM),
            (WalkLocation.DRAM, WalkLocation.DRAM),
        ]
        for upper, leaf in sweeps:
            tuning = WalkTuning(upper=upper, leaf=leaf)
            rep.module.apply_walk_tuning(process, probe_va, tuning)
            walk = rep.machine.walker.walk(
                process.pcid, process.root_frame, probe_va)
            window = _measure(tuning)
            rows.append([f"{upper.value}/{leaf.value}", walk.latency,
                         window])
        return rows

    rows = once(experiment)
    table = render_table(
        "Walk tuning (§4.1.2): upper-levels/leaf placement vs walk "
        "latency and speculative window",
        ["placement (upper/leaf)", "walk latency (cycles)",
         "window (speculated loads)"],
        rows)
    table += ("\n\npaper claim: 'from a few cycles to over one "
              "thousand cycles' -- range measured above")
    emit("ablation_walk_tuning", table)
    latencies = [row[1] for row in rows]
    assert latencies[0] < 30
    assert latencies[-1] > 1000
    windows = [row[2] for row in rows]
    assert windows[0] < windows[3]
