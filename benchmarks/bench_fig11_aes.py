"""Figure 11: AES attack — latency of the 16 Td1 cache lines after
each of three replays of one loop iteration.

Paper result: after Replay 0 (unprimed) latencies are mixed across
levels; after Replays 1 and 2 (primed) the picture is "very clear and
consistent" — exactly the speculatively accessed lines hit in L1,
every other line misses to memory.  The extraction is noise-free in a
single logical run.
"""

from repro.core.attacks.aes_cache import AESCacheAttack
from repro.crypto.aes import encrypt_block

from conftest import emit, render_table

KEY = bytes(range(16))
PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_figure11(once):
    ciphertext = encrypt_block(KEY, PLAINTEXT)
    attack = AESCacheAttack(KEY, ciphertext)
    fig11 = once(attack.run_figure11)

    rows = []
    for line in range(16):
        rows.append([
            line,
            *(lat[line] for lat in fig11.replay_latencies),
            "yes" if line in fig11.truth_lines else "",
        ])
    table = render_table(
        "Figure 11: Td1 line probe latency (cycles) after each replay "
        "of one AES iteration",
        ["line", "replay 0", "replay 1", "replay 2", "truly accessed"],
        rows)
    table += (f"\n\nextracted lines: {fig11.extracted_lines}  "
              f"truth: {fig11.truth_lines}  "
              f"noise-free: {fig11.noise_free}")
    emit("fig11_aes", table)
    assert fig11.noise_free


def test_aes_full_single_run_extraction(once):
    """§6.2's closing claim: 'MicroScope reliably extracts all the
    cache accesses performed during the decryption ... with only a
    single execution of AES decryption.'"""
    ciphertext = encrypt_block(KEY, PLAINTEXT)
    attack = AESCacheAttack(KEY, ciphertext)
    result = once(attack.run_full_extraction)

    rows = []
    for table_no in range(4):
        rows.append([
            f"Td{table_no}",
            sorted(result.extracted_lines[table_no]),
            sorted(result.truth_lines[table_no]),
            "yes" if result.extracted_lines[table_no]
            == result.truth_lines[table_no] else "NO",
        ])
    text = render_table(
        "AES single-run extraction: cache lines per Td table",
        ["table", "extracted", "ground truth", "exact"],
        rows)
    text += (f"\n\nprobes: {result.replays_total}   "
             f"recall: {result.union_recall():.3f}   "
             f"precision: {result.union_precision():.3f}   "
             f"victim decrypted correctly: {result.plaintext_ok}")
    emit("aes_full_extraction", text)
    assert result.exact_union and result.plaintext_ok
