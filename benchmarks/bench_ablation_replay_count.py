"""Ablation (§4.1.4): denoising as a function of replay count.

"Each replay provides the adversary with a noisy sample.  By replaying
an appropriate number of times, the adversary can disambiguate the
secret from the noise."

Swept here: the Replayer releases the victim after N replays; the
Monitor's above-threshold evidence (and the SPRT confidence verdict)
is reported per N.
"""

from repro.core.analysis import ConfidenceTracker, derive_threshold
from repro.core.module import MicroScopeConfig
from repro.core.recipes import ReplayAction, ReplayDecision
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.config import CoreConfig
from repro.config import MachineConfig
from repro.victims.control_flow import setup_control_flow_victim
from repro.victims.monitor import setup_port_contention_monitor

from conftest import emit, render_table


def _run_with_replays(replays, secret, threshold):
    rep = Replayer(AttackEnvironment.build(
        machine_config=MachineConfig(core=CoreConfig(rdtsc_jitter=3)),
        module_config=MicroScopeConfig(fault_handler_cost=6000)))
    victim_proc = rep.create_victim_process()
    victim = setup_control_flow_victim(victim_proc, secret)
    monitor_proc = rep.create_monitor_process()
    monitor = setup_port_contention_monitor(monitor_proc, 2000, 4)

    def attack_fn(event):
        if event.replay_no >= replays:
            return ReplayDecision(ReplayAction.RELEASE)
        return ReplayDecision(ReplayAction.REPLAY)

    recipe = rep.module.provide_replay_handle(
        victim_proc, victim.handle_va + 0x20, attack_function=attack_fn,
        max_replays=10**9)
    rep.launch_victim(victim_proc, victim.program)
    rep.launch_monitor(monitor_proc, monitor.program, context_id=1)
    rep.arm(recipe)
    monitor_ctx = rep.machine.contexts[1]
    rep.machine.run(20_000_000,
                    until=lambda _m: monitor_ctx.finished())
    samples = monitor.read_samples(monitor_proc)
    above = sum(1 for s in samples if s > threshold)
    tracker = ConfidenceTracker(rate_h0=0.0005, rate_h1=0.004)
    tracker.observe_many(s > threshold for s in samples)
    return above, tracker.verdict


def test_replay_count_sweep(once):
    def experiment():
        calibration_rep = Replayer(AttackEnvironment.build(
            machine_config=MachineConfig(
                core=CoreConfig(rdtsc_jitter=3))))
        cal_proc = calibration_rep.create_monitor_process()
        cal = setup_port_contention_monitor(cal_proc, 800, 4)
        calibration_rep.launch_monitor(cal_proc, cal.program, 1)
        calibration_rep.run_until_victim_done(context_id=1,
                                              max_cycles=5_000_000)
        threshold = derive_threshold(cal.read_samples(cal_proc))
        rows = []
        for replays in (1, 2, 4, 8, 16, 32):
            above, verdict = _run_with_replays(replays, secret=1,
                                               threshold=threshold)
            decided = {True: "div (correct)", False: "mul (WRONG)",
                       None: "undecided"}[verdict]
            rows.append([replays, above, decided])
        return threshold, rows

    threshold, rows = once(experiment)
    table = render_table(
        f"Replay-count ablation (victim = div side, threshold "
        f"{threshold:.0f} cycles, 2000 monitor samples)",
        ["replays granted", "samples above threshold",
         "SPRT verdict"],
        rows)
    table += ("\n\nmore replays -> more above-threshold evidence -> "
              "confident verdict (the §4.1.4 denoising loop)")
    emit("ablation_replay_count", table)
    evidence = [row[1] for row in rows]
    assert evidence[-1] > evidence[0]
    assert rows[-1][2].startswith("div")
