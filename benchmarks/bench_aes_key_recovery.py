"""Extension experiment: AES key material recovered end-to-end from
MicroScope's own probe windows.

The paper stops at extracting the accessed Td lines (Fig. 11); this
bench carries the pipeline to its cryptographic conclusion.  The §4.4
stepper's fault-window probes are attributed to individual round-1
statements by window differencing, each attributed line pins the high
nibble of one byte of the first decryption round key (= last
encryption round key), and candidate sets intersect across blocks.

At 64-byte line granularity the information-theoretic yield is exactly
the high nibbles — 64 of the 128 round-key bits — which the attack
recovers completely from a handful of single-run extractions.
"""

from repro.core.attacks.aes_key_recovery import AESKeyRecoveryAttack
from repro.crypto.aes import encrypt_block
from repro.harness import FaultPolicy, default_workers

from conftest import emit, render_table

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
PLAINTEXTS = [b"sixteen byte msg", b"another message!",
              b"third ciphertext", b"fourth plaintext"]


def test_key_recovery_from_attack_windows(once):
    ciphertexts = [encrypt_block(KEY, p) for p in PLAINTEXTS]

    def experiment():
        # Blocks are independent victim runs: extract each once, in
        # parallel, then intersect prefixes to chart recovery vs
        # block count (run_sweep is order-deterministic, so worker
        # count never changes the table).
        attack = AESKeyRecoveryAttack(KEY)
        workers = min(default_workers(), len(ciphertexts))
        attributions = attack.extract_blocks(
            ciphertexts, workers=workers,
            policy=FaultPolicy(max_attempts=2))
        return [(count, attack.combine(attributions[:count]))
                for count in range(1, len(attributions) + 1)]

    per_block = once(experiment)
    rows = []
    for count, result in per_block:
        mean_acc = sum(a.accuracy_against(KEY)
                       for a in result.attributions) / count
        rows.append([count, f"{mean_acc:.2f}",
                     result.bytes_recovered,
                     result.bits_recovered,
                     "yes" if result.all_correct else "NO"])
    table = render_table(
        "AES round-key high-nibble recovery vs blocks attacked "
        "(attack-observed windows only)",
        ["blocks", "attribution accuracy", "nibbles pinned (of 16)",
         "key bits recovered", "all correct"],
        rows)
    table += ("\n\nline granularity yields exactly the high nibbles; "
              "an entry-granularity channel (MemJam-style, equally "
              "denoisable by MicroScope) completes the key via "
              "schedule inversion — see tests/core/test_analysis.py")
    emit("aes_key_recovery", table)
    final = per_block[-1][1]
    assert final.bytes_recovered == 16 and final.all_correct
