"""Extension experiment: square-and-multiply exponent extraction.

The related-work attacks the paper aims to "boost" ([1, 2, 20, 22,
64]) classically target crypto exponents and need many traces.  This
bench applies MicroScope to a real square-and-multiply modexp victim
and measures single-run extraction across exponent widths.
"""

import random

from repro.core.attacks.rsa import ModExpExtractionAttack

from conftest import emit, render_table


def test_exponent_extraction_sweep(once):
    rng = random.Random(1337)

    def experiment():
        rows = []
        attack = ModExpExtractionAttack()
        for bits in (8, 16, 32, 48):
            exponent = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
            result = attack.run(exponent)
            rows.append([bits, f"{exponent:#x}",
                         f"{result.accuracy:.2f}",
                         "yes" if result.exact else "NO",
                         result.replays,
                         "yes" if result.result_correct else "NO"])
        return rows

    rows = once(experiment)
    table = render_table(
        "Square-and-multiply exponent extraction (single logical run, "
        "3 replays/iteration)",
        ["exponent bits", "exponent", "bit accuracy", "exact",
         "replays", "victim result correct"],
        rows)
    emit("rsa_extraction", table)
    assert all(row[3] == "yes" for row in rows)
    assert all(row[5] == "yes" for row in rows)
