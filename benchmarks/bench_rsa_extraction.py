"""Extension experiment: square-and-multiply exponent extraction.

The related-work attacks the paper aims to "boost" ([1, 2, 20, 22,
64]) classically target crypto exponents and need many traces.  This
bench applies MicroScope to a real square-and-multiply modexp victim
and measures single-run extraction across exponent widths — driven
through the :class:`repro.Experiment` facade as a fault-tolerant
sweep (each width is an independent trial; the merged table is
worker-count invariant).
"""

import random

from repro import Experiment, FaultPolicy
from repro.core.attacks.rsa import ModExpExtractionAttack
from repro.harness import default_workers

from conftest import emit, render_table

WIDTHS = (8, 16, 32, 48)


def test_exponent_extraction_sweep(once):
    rng = random.Random(1337)
    exponents = [rng.getrandbits(bits) | (1 << (bits - 1)) | 1
                 for bits in WIDTHS]

    def experiment():
        report = Experiment(
            attack=ModExpExtractionAttack(),
            sweep=[{"exponent": e} for e in exponents],
            workers=min(default_workers(), len(exponents)),
            policy=FaultPolicy(max_attempts=2),
            label="rsa-extraction",
        ).run()
        return [[bits, f"{exponent:#x}",
                 f"{result.accuracy:.2f}",
                 "yes" if result.exact else "NO",
                 result.replays,
                 "yes" if result.result_correct else "NO"]
                for bits, exponent, result
                in zip(WIDTHS, exponents, report.results)]

    rows = once(experiment)
    table = render_table(
        "Square-and-multiply exponent extraction (single logical run, "
        "3 replays/iteration)",
        ["exponent bits", "exponent", "bit accuracy", "exact",
         "replays", "victim result correct"],
        rows)
    emit("rsa_extraction", table)
    assert all(row[3] == "yes" for row in rows)
    assert all(row[5] == "yes" for row in rows)
