"""Ablation (§7.1): alternative replay handles.

The paper generalises beyond page-fault handles: TSX transaction
aborts replay whole transactions (unbounded, large windows) and branch
mispredictions replay bounded windows.  This bench measures replays
obtainable per mechanism, plus handle availability via the §4.1.1
static analysis.
"""

from repro.core.attacks.mispredict_replay import MispredictReplayAttack
from repro.core.attacks.tsx_replay import TSXReplayAttack
from repro.core.handles import find_replay_handles
from repro.core.recipes import ReplayAction, ReplayDecision
from repro.core.replayer import AttackEnvironment, Replayer
from repro.victims.control_flow import setup_control_flow_victim

from conftest import emit, render_table


def _page_fault_replays(limit):
    rep = Replayer(AttackEnvironment.build())
    process = rep.create_victim_process()
    victim = setup_control_flow_victim(process, secret=1)
    recipe = rep.module.provide_replay_handle(
        process, victim.handle_va + 0x20,
        attack_function=lambda e: ReplayDecision(
            ReplayAction.RELEASE if e.replay_no >= limit
            else ReplayAction.REPLAY))
    rep.launch_victim(process, victim.program)
    rep.arm(recipe)
    rep.run_until_victim_done()
    return recipe.replays


def test_replay_handle_mechanisms(once):
    def experiment():
        rows = []
        pf = _page_fault_replays(limit=50)
        rows.append(["page-fault load (this paper)", pf,
                     "unbounded (attacker releases)", "ROB-bounded"])
        tsx = TSXReplayAttack(trials=5, fenced=True,
                              max_aborts_per_trial=40).run()
        rows.append(["TSX abort (§7.1)",
                     f"{tsx.mean_replays:.1f}/trial (attacker-chosen)",
                     "unbounded (abort at will)",
                     "whole transaction"])
        wrong = MispredictReplayAttack().run(secret=1,
                                             primed_taken=False)
        rows.append(["branch mispredict (§7.1)",
                     wrong.replayed_instructions,
                     "bounded (predictor converges)",
                     "mispredict shadow"])
        return rows, pf, wrong

    rows, pf, wrong = once(experiment)
    table = render_table(
        "Replay-handle mechanisms (§7.1)",
        ["mechanism", "replays measured", "replay budget",
         "window size"],
        rows)
    emit("ablation_replay_handles", table)
    assert pf == 50
    assert wrong.replayed_instructions >= 1


def test_handle_availability(once):
    """'Programs have many potential replay handles' (§4.1.1)."""
    def experiment():
        rep = Replayer(AttackEnvironment.build())
        process = rep.create_victim_process()
        victim = setup_control_flow_victim(process, secret=1)
        program = victim.program
        sensitive = next(
            i for i, ins in enumerate(program.instructions)
            if ins.comment.startswith("transmit-div"))
        return len(find_replay_handles(program, sensitive)), \
            len(program)

    handles, length = once(experiment)
    emit("handle_availability",
         f"Replay-handle availability (§4.1.1)\n"
         f"victim length: {length} instructions\n"
         f"viable handles before the sensitive divide: {handles}")
    assert handles >= 2
