"""Simulator performance: cycles per host-second.

Not a paper result — engineering telemetry so regressions in the
cycle loop are visible in CI, and so experiment budgets in the other
benches stay predictable.
"""

from repro.cpu.machine import Machine
from repro.isa.program import ProgramBuilder

from conftest import emit


def _busy_program(iterations):
    return (ProgramBuilder("spin")
            .li("r1", 0).li("r2", iterations).li("r3", 7)
            .label("loop")
            .mul("r4", "r3", "r3")
            .addi("r1", "r1", 1)
            .bne("r1", "r2", "loop")
            .halt().build())


def test_single_context_throughput(benchmark):
    def run():
        machine = Machine()
        machine.contexts[0].load_program(_busy_program(5000))
        machine.run(100_000)
        return machine.cycle

    cycles = benchmark(run)
    emit("simulator_throughput",
         f"single-context run: {cycles} simulated cycles per call\n"
         f"(see pytest-benchmark table for host time)")
    assert cycles > 5000


def test_smt_throughput(benchmark):
    def run():
        machine = Machine()
        machine.contexts[0].load_program(_busy_program(2500))
        machine.contexts[1].load_program(_busy_program(2500))
        machine.run(100_000)
        return machine.cycle

    cycles = benchmark(run)
    assert cycles > 2500
