"""Simulator performance: cycles per host-second.

Not a paper result — engineering telemetry so regressions in the
cycle loop are visible in CI, and so experiment budgets in the other
benches stay predictable.

Beyond the spin loops, this bench runs the replay-attack workload
twice — naive stepping vs the quiescence fast-forward scheduler — and
asserts both that fast-forward is bit-exact (same cycles, same machine
report) and that it actually pays (>= 3x simulated-cycles/host-second).
``benchmarks/results/simulator_throughput.json`` records the numbers
machine-readably; CI diffs fresh measurements against the committed
copy and fails on a >2x regression.
"""

from conftest import emit, emit_json, full_scale
from throughput_workloads import (
    run_replay_attack,
    run_spin,
    timed,
)


def test_single_context_throughput(benchmark):
    def run():
        return run_spin(5000, contexts=1)

    cycles = benchmark(run)
    assert cycles > 5000


def test_smt_throughput(benchmark):
    def run():
        return run_spin(5000, contexts=2)

    cycles = benchmark(run)
    assert cycles > 2500


def test_replay_attack_throughput(once):
    """The headline number: replay-attack simulation speed, naive vs
    fast-forward, proven bit-exact on the full machine report."""
    replays = 2000 if full_scale() else 200

    def experiment():
        (naive_cycles, naive_report), naive_host = timed(
            run_replay_attack, False, replays)
        (fast_cycles, fast_report), fast_host = timed(
            run_replay_attack, True, replays)
        return (naive_cycles, naive_report, naive_host,
                fast_cycles, fast_report, fast_host)

    (naive_cycles, naive_report, naive_host,
     fast_cycles, fast_report, fast_host) = once(experiment)

    # Bit-exactness: cycle count and the entire stats snapshot agree.
    assert fast_cycles == naive_cycles
    assert fast_report == naive_report

    # Spin-loop rates for the JSON artefact (single timed run each).
    spin_cycles, spin_host = timed(run_spin, 5000, 1)
    smt_cycles, smt_host = timed(run_spin, 5000, 2)

    naive_cps = naive_cycles / naive_host
    fast_cps = fast_cycles / fast_host
    speedup = fast_cps / naive_cps
    payload = {
        "scale": "full" if full_scale() else "quick",
        "replays": replays,
        "replay_simulated_cycles": naive_cycles,
        "cycles_per_host_second": {
            "single_context_spin": round(spin_cycles / spin_host),
            "smt_spin": round(smt_cycles / smt_host),
            "replay_attack_naive": round(naive_cps),
            "replay_attack_fast_forward": round(fast_cps),
        },
        "fast_forward_speedup": round(speedup, 2),
        "fast_forward_bit_exact": True,
    }
    emit_json("simulator_throughput", payload)
    emit("simulator_throughput",
         f"replay-attack workload: {naive_cycles} simulated cycles\n"
         f"naive stepping:  {naive_cps:,.0f} cycles/host-second\n"
         f"fast-forward:    {fast_cps:,.0f} cycles/host-second "
         f"({speedup:.1f}x, bit-exact)\n"
         f"spin loop:       {spin_cycles / spin_host:,.0f} "
         f"cycles/host-second (1 ctx), "
         f"{smt_cycles / smt_host:,.0f} (2 ctx)")

    assert speedup >= 3.0, (
        f"fast-forward speedup {speedup:.2f}x below the 3x floor")
