"""Simulator performance: cycles per host-second.

Not a paper result — engineering telemetry so regressions in the
cycle loop are visible in CI, and so experiment budgets in the other
benches stay predictable.

Beyond the spin loops, this bench runs the replay-attack workload
twice — naive stepping vs the quiescence fast-forward scheduler — and
asserts both that fast-forward is bit-exact (same cycles, same machine
report) and that it actually pays (>= 3x simulated-cycles/host-second).
``benchmarks/results/simulator_throughput.json`` records the numbers
machine-readably; CI diffs fresh measurements against the committed
copy and fails on a >2x regression.
"""

from repro.batch import MachineFleet, make_ops, run_lane_scalar
from repro.core.attacks.port_contention import PortContentionAttack
from repro.snapshot import clear_cache

from conftest import emit, emit_json, full_scale
from throughput_workloads import (
    FLEET_PLAN,
    fleet_lanes,
    make_aes_window_replayer,
    make_fig10_window_replayer,
    run_aes_window_cold,
    run_fig10_cold,
    run_replay_attack,
    run_spin,
    timed,
)


def test_single_context_throughput(benchmark):
    def run():
        return run_spin(5000, contexts=1)

    cycles = benchmark(run)
    assert cycles > 5000


def test_smt_throughput(benchmark):
    def run():
        return run_spin(5000, contexts=2)

    cycles = benchmark(run)
    assert cycles > 2500


def test_replay_attack_throughput(once):
    """The headline number: replay-attack simulation speed, naive vs
    fast-forward, proven bit-exact on the full machine report."""
    replays = 2000 if full_scale() else 200

    def experiment():
        (naive_cycles, naive_report), naive_host = timed(
            run_replay_attack, False, replays)
        (fast_cycles, fast_report), fast_host = timed(
            run_replay_attack, True, replays)
        return (naive_cycles, naive_report, naive_host,
                fast_cycles, fast_report, fast_host)

    (naive_cycles, naive_report, naive_host,
     fast_cycles, fast_report, fast_host) = once(experiment)

    # Bit-exactness: cycle count and the entire stats snapshot agree.
    assert fast_cycles == naive_cycles
    assert fast_report == naive_report

    # Spin-loop rates for the JSON artefact (single timed run each).
    spin_cycles, spin_host = timed(run_spin, 5000, 1)
    smt_cycles, smt_host = timed(run_spin, 5000, 2)

    naive_cps = naive_cycles / naive_host
    fast_cps = fast_cycles / fast_host
    speedup = fast_cps / naive_cps
    payload = {
        "scale": "full" if full_scale() else "quick",
        "replays": replays,
        "replay_simulated_cycles": naive_cycles,
        "cycles_per_host_second": {
            "single_context_spin": round(spin_cycles / spin_host),
            "smt_spin": round(smt_cycles / smt_host),
            "replay_attack_naive": round(naive_cps),
            "replay_attack_fast_forward": round(fast_cps),
        },
        "fast_forward_speedup": round(speedup, 2),
        "fast_forward_bit_exact": True,
    }
    emit_json("simulator_throughput", payload)
    emit("simulator_throughput",
         f"replay-attack workload: {naive_cycles} simulated cycles\n"
         f"naive stepping:  {naive_cps:,.0f} cycles/host-second\n"
         f"fast-forward:    {fast_cps:,.0f} cycles/host-second "
         f"({speedup:.1f}x, bit-exact)\n"
         f"spin loop:       {spin_cycles / spin_host:,.0f} "
         f"cycles/host-second (1 ctx), "
         f"{smt_cycles / smt_host:,.0f} (2 ctx)")

    assert speedup >= 3.0, (
        f"fast-forward speedup {speedup:.2f}x below the 3x floor")


def test_batch_fleet_throughput(once):
    """Batched lockstep sweep throughput (repro.batch).

    The unit of work is a *lane*: one seed's full trial of the fleet
    checksum workload.  The scalar baseline runs the lanes one
    machine at a time in this process — exactly what
    ``backend="batch"`` replaces — and every fleet lane must be
    bit-identical to its scalar run.  Reported as lanes/host-second
    alongside the aggregate simulated-cycles/host-second the other
    workloads use.
    """
    lanes = 64 if full_scale() else 32
    lane_specs = fleet_lanes(lanes)

    def experiment():
        scalar_results, scalar_host = timed(lambda: [
            run_lane_scalar(FLEET_PLAN, seed, params)
            for seed, params in lane_specs])
        engines = {}
        for engine in ("pure", "numpy"):
            try:
                ops = make_ops(engine)
            except ImportError:
                continue
            fleet = MachineFleet(FLEET_PLAN, lane_specs, ops=ops)
            outcomes, host = timed(fleet.run)
            assert all(
                outcome.error is None and outcome.result == reference
                for outcome, reference
                in zip(outcomes, scalar_results)), \
                f"{engine} fleet diverged from the scalar sweep"
            assert fleet.stats["peeled"] == 0, \
                "checksum workload unexpectedly peeled lanes"
            engines[engine] = host
        return scalar_results, scalar_host, engines

    scalar_results, scalar_host, engines = once(experiment)

    cycles_per_lane = scalar_results[0][1]
    payload = {
        "scale": "full" if full_scale() else "quick",
        "lanes": lanes,
        "simulated_cycles_per_lane": cycles_per_lane,
        "lanes_per_host_second": {
            "scalar_single_process": round(lanes / scalar_host, 2),
            **{f"fleet_{engine}": round(lanes / host, 2)
               for engine, host in engines.items()},
        },
        "cycles_per_host_second": {
            "scalar_single_process":
                round(lanes * cycles_per_lane / scalar_host),
            **{f"fleet_{engine}":
                round(lanes * cycles_per_lane / host)
               for engine, host in engines.items()},
        },
        "fleet_speedup": {engine: round(scalar_host / host, 2)
                          for engine, host in engines.items()},
        "bit_identical": True,
    }
    emit_json("batch_fleet_throughput", payload)
    lines = [f"fleet checksum workload: {lanes} lanes x "
             f"{cycles_per_lane} simulated cycles",
             f"scalar sweep:    {lanes / scalar_host:,.1f} "
             f"lanes/host-second"]
    for engine, host in engines.items():
        lines.append(
            f"fleet ({engine}):"
            f"{'':{max(1, 7 - len(engine))}}"
            f"{lanes / host:,.1f} lanes/host-second "
            f"({scalar_host / host:.1f}x, bit-identical)")
    emit("batch_fleet_throughput", "\n".join(lines))

    for engine, host in engines.items():
        speedup = scalar_host / host
        assert speedup >= 5.0, (
            f"{engine} fleet speedup {speedup:.2f}x below the 5x "
            f"floor")


def test_warm_start_window_throughput(once):
    """Warm-start vs cold-start trials/host-second (repro.snapshot).

    The unit of work is MicroScope's own: observing one replay window.
    Cold trials pay the full run from a fresh platform; warm trials
    rewind to a mid-attack checkpoint and simulate only the window.
    Every warm trial's measured data must be bit-identical to the cold
    baseline — the speedup is pure amortization, not approximation.
    """
    measurements = 2500 if full_scale() else 600
    warm_trials = 3

    def experiment():
        # AES §4.4: the fourth rk window of round 1 (checkpoint after
        # three stepped rk sites).
        aes_cold_probes, aes_cold_host = timed(run_aes_window_cold)
        aes_trial = make_aes_window_replayer()
        aes_warm_hosts = []
        for _ in range(warm_trials):
            probes, host = timed(aes_trial)
            assert probes == aes_cold_probes, \
                "AES warm window diverged from the cold run"
            aes_warm_hosts.append(host)

        # Fig. 10 div panel: final 15% of the Monitor trace
        # (checkpoint at 85% of the Monitor's retired instructions).
        attack = PortContentionAttack(measurements=measurements)
        clear_cache()
        threshold = attack.calibrate()
        fig10_cold, fig10_cold_host = timed(run_fig10_cold, attack, 1,
                                            threshold)
        fig10_trial, reference = make_fig10_window_replayer(
            attack, 1, threshold)
        assert reference == fig10_cold, \
            "Fig. 10 reference run diverged from the cold run"
        fig10_warm_hosts = []
        for _ in range(warm_trials):
            data, host = timed(fig10_trial)
            assert data == fig10_cold, \
                "Fig. 10 warm panel diverged from the cold run"
            fig10_warm_hosts.append(host)
        return (aes_cold_host, aes_warm_hosts,
                fig10_cold_host, fig10_warm_hosts)

    (aes_cold_host, aes_warm_hosts,
     fig10_cold_host, fig10_warm_hosts) = once(experiment)

    def rates(cold_host, warm_hosts):
        warm_host = sum(warm_hosts) / len(warm_hosts)
        return (1.0 / cold_host, 1.0 / warm_host,
                cold_host / warm_host)

    aes_cold, aes_warm, aes_speedup = rates(aes_cold_host,
                                            aes_warm_hosts)
    f10_cold, f10_warm, f10_speedup = rates(fig10_cold_host,
                                            fig10_warm_hosts)
    payload = {
        "scale": "full" if full_scale() else "quick",
        "fig10_measurements": measurements,
        "warm_trials_per_point": warm_trials,
        "trials_per_host_second": {
            "aes_window_cold": round(aes_cold, 2),
            "aes_window_warm": round(aes_warm, 2),
            "fig10_panel_cold": round(f10_cold, 2),
            "fig10_panel_warm": round(f10_warm, 2),
        },
        "warm_start_speedup": {
            "aes_window": round(aes_speedup, 2),
            "fig10_panel": round(f10_speedup, 2),
        },
        "bit_identical": True,
    }
    emit_json("warm_start_throughput", payload)
    emit("warm_start_throughput",
         f"AES §4.4 window:   cold {aes_cold:.2f} trials/s, warm "
         f"{aes_warm:.2f} trials/s ({aes_speedup:.1f}x, bit-identical)"
         f"\nFig. 10 panel:     cold {f10_cold:.2f} trials/s, warm "
         f"{f10_warm:.2f} trials/s ({f10_speedup:.1f}x, bit-identical)")

    assert aes_speedup >= 3.0, (
        f"AES warm-start speedup {aes_speedup:.2f}x below the 3x floor")
    assert f10_speedup >= 3.0, (
        f"Fig. 10 warm-start speedup {f10_speedup:.2f}x below the "
        f"3x floor")
