#!/usr/bin/env python3
"""A tour of the Section 8 countermeasures, each evaluated against
the attack it tries to stop.

Run:  python examples/defenses_tour.py
"""

from repro.core.replayer import AttackEnvironment, Replayer
from repro.evaluation.defenses.dejavu import evaluate_dejavu
from repro.evaluation.defenses.fences import evaluate_fence_on_flush
from repro.evaluation.defenses.pf_oblivious import evaluate_pf_obliviousness
from repro.evaluation.defenses.tsgx import evaluate_tsgx


def main():
    print("== Fence on pipeline flushes ==")
    fence = evaluate_fence_on_flush(replays=10)
    print(f"victim's secret divides observed by the attacker:")
    print(f"  undefended : {fence.transmit_issues_undefended} "
          f"speculative executions across 10 replays")
    print(f"  defended   : {fence.transmit_issues_defended}")
    print(f"  leakage blocked: {fence.leakage_blocked}\n")

    print("== T-SGX (transactions around enclave code) ==")
    tsgx = evaluate_tsgx()
    print(f"  OS-visible page faults : {tsgx.os_faults_seen} "
          f"(TSX suppressed them all)")
    print(f"  transaction aborts     : {tsgx.aborts} "
          f"(threshold N = {tsgx.threshold})")
    print(f"  victim terminated      : {tsgx.victim_terminated}")
    print(f"  replay windows leaked  : {tsgx.replay_windows_observed} "
          f"-> paper: 'still provides N-1 replays'\n")

    print("== Deja Vu (reference-clock thread) ==")
    for replays in (2, 50):
        report = evaluate_dejavu(replays=replays)
        outcome = "DETECTED" if report.detected else \
            "masked (fits the page-fault budget)"
        print(f"  {replays:>3} replays: elapsed {report.elapsed_ticks} "
              f"ticks vs budget {report.budget_ticks} -> {outcome}")
    print()

    print("== PF-obliviousness (input-invariant page traces) ==")
    rep = Replayer(AttackEnvironment.build())
    process = rep.kernel.create_process("pf")
    pf = evaluate_pf_obliviousness(process)
    print(f"  controlled channel defeated : "
          f"{pf.defeats_controlled_channel}")
    print(f"  replay handles before/after : {pf.plain_handles} -> "
          f"{pf.oblivious_handles}")
    print(f"  helps MicroScope            : {pf.helps_microscope} "
          f"(the paper's ironic observation)")


if __name__ == "__main__":
    main()
