#!/usr/bin/env python3
"""Bring your own victim: write it in assembler, find replay handles
automatically, and attack it.

Demonstrates the library as a research framework rather than a fixed
set of experiments:

1. a victim is written in micro-ISA assembly text;
2. :func:`find_replay_handles` (§4.1.1) enumerates viable handles for
   its sensitive instruction;
3. the chosen handle is armed and the secret-dependent table access is
   extracted by Prime+Probe across replays.

Run:  python examples/custom_victim_assembler.py
"""

from repro.core.handles import find_replay_handles
from repro.core.recipes import ReplayAction, ReplayDecision
from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.assembler import assemble

SECRET = 13  # which table line the victim touches (0..15)


def main():
    rep = Replayer(AttackEnvironment.build())
    process = rep.create_victim_process("custom")
    scratch = process.alloc(4096, "scratch")
    table = process.alloc(4096, "table")
    secret_va = process.enclave.private_base
    process.write(secret_va, SECRET)

    source = f"""
    ; a hand-written victim: loads a secret and touches table[secret]
        li    r1, {scratch}
        li    r2, {secret_va}
        li    r3, {table}
        store [r1 + 8], r3     ; unrelated bookkeeping (a handle!)
        load  r4, [r1]         ; another candidate handle
        load  r5, [r2]         ; the secret (enclave-private)
        li    r6, 64
        mul   r7, r5, r6
        add   r7, r7, r3
        load  r8, [r7]         ; sensitive: secret-indexed access
        halt
    """
    program = assemble(source, name="custom-victim")
    print("Victim program:")
    print(program.listing(), "\n")

    sensitive = next(i for i, ins in enumerate(program.instructions)
                     if ins.rs1 == "r7" and ins.is_load)
    candidates = find_replay_handles(program, sensitive)
    print(f"Replay-handle candidates for instruction {sensitive}:")
    for candidate in candidates:
        print(f"  {candidate}")
    handle_index = candidates[0].index
    print(f"arming the first candidate (instruction "
          f"{handle_index})\n")

    probe_addrs = [table + line * 64 for line in range(16)]
    observed = []

    def attack_fn(event):
        latencies = rep.module.probe_lines(process, probe_addrs)
        hits = [i for i, lat in enumerate(latencies) if lat <= 20]
        observed.append(hits)
        cost = rep.module.prime_lines(process, probe_addrs)
        action = (ReplayAction.RELEASE if event.replay_no >= 4
                  else ReplayAction.REPLAY)
        return ReplayDecision(action, extra_cost=cost)

    recipe = rep.module.provide_replay_handle(
        process, scratch, attack_function=attack_fn,
        name="custom-attack")
    rep.launch_victim(process, program)
    rep.module.prime_lines(process, probe_addrs)
    rep.arm(recipe)
    rep.run_until_victim_done()

    print("Per-replay probe hits (table lines found in L1):")
    for replay, hits in enumerate(observed):
        print(f"  replay {replay}: {hits}")
    stable = set(observed[1]) if len(observed) > 1 else set()
    for hits in observed[2:]:
        stable &= set(hits)
    extracted = stable.pop() if len(stable) == 1 else None
    print(f"\nextracted secret: {extracted}   true secret: {SECRET}   "
          f"correct: {extracted == SECRET}")


if __name__ == "__main__":
    main()
