#!/usr/bin/env python3
"""Extracting an RSA-style private exponent in a single run.

The victim computes ``base^d mod n`` with square-and-multiply — the
classic side-channel target.  MicroScope steps the loop iteration by
iteration (handle fault, replays, pivot swap) and Prime+Probes the
multiply path's operand lines: an iteration that touches its operand
line took the multiply branch, so its exponent bit is 1.

Every bit is recovered from ONE architectural execution; the victim
still produces the correct modexp result.

Run:  python examples/rsa_exponent_extraction.py [--bits N]
"""

import argparse
import random

from repro.core.attacks.rsa import ModExpExtractionAttack


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=24,
                        help="secret exponent width")
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    rng = random.Random(args.seed)
    exponent = rng.getrandbits(args.bits) | (1 << (args.bits - 1)) | 1
    print(f"secret exponent ({args.bits} bits): {exponent:#x}")
    print(f"bit string (LSB first): "
          f"{''.join(str((exponent >> i) & 1) for i in range(args.bits))}")

    attack = ModExpExtractionAttack()
    result = attack.run(exponent)

    extracted = "".join("?" if b is None else str(b)
                        for b in result.extracted_bits)
    print(f"\nextracted  (LSB first): {extracted}")
    print(f"replays used           : {result.replays} "
          f"({attack.replays_per_iteration} per iteration)")
    print(f"victim's modexp result : "
          f"{'correct' if result.result_correct else 'WRONG'}")
    recovered = result.recovered_exponent
    print(f"recovered exponent     : "
          f"{recovered:#x}" if recovered is not None else "incomplete")
    print(f"exact match            : {result.exact}")


if __name__ == "__main__":
    main()
