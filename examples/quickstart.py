#!/usr/bin/env python3
"""Quickstart: your first microarchitectural replay attack.

Builds a simulated platform (out-of-order SMT core, caches, page
tables, kernel, SGX), puts a victim with a secret-dependent branch in
an enclave, and uses MicroScope to replay its two secret-dependent
instructions until the port-contention monitor can read the secret —
all from ONE architectural run of the victim.

Everything goes through the top-level facade: one
:class:`repro.Experiment` declares the attack and the two-secret
sweep, and ``run()`` handles machine construction, warm-start
snapshots and result merging.

Run:  python examples/quickstart.py
"""

import repro


def main():
    attack = repro.PortContentionAttack(measurements=1500)

    print("Calibrating the contention threshold (quiet run)...")
    threshold = attack.calibrate(samples=600)
    print(f"  threshold = {threshold:.0f} cycles "
          f"(the paper's ~120-cycle line)\n")

    report = repro.Experiment(
        attack=attack,
        victim={"threshold": threshold},
        sweep=[{"secret": 0}, {"secret": 1}],
        label="quickstart",
    ).run()

    for (secret, label), result in zip(
            ((0, "two multiplications"), (1, "two divisions")),
            report.results):
        print(f"Victim secret = {secret} ({label}):")
        print(f"  monitor samples        : {len(result.samples)}")
        print(f"  above threshold        : {result.above_threshold}")
        print(f"  replays of the victim  : {result.replays}")
        guess = "div side (secret=1)" if result.verdict else \
            "mul side (secret=0)"
        print(f"  attacker's verdict     : {guess}")
        print(f"  correct                : {result.correct}\n")

    print(f"Both panels in {report.wall_seconds:.1f}s of wall time.")
    print("Both secrets read correctly from a single logical run each —")
    print("the victim's code executed architecturally exactly once.")


if __name__ == "__main__":
    main()
