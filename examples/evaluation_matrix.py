#!/usr/bin/env python3
"""A small attack x defense evaluation matrix, classified and printed.

Runs three representative attacks against every Section 8 defense
column (plus the undefended baseline) through ``repro.evaluation``,
then prints the classified summary table and the per-cell details --
the same machinery that generates ``docs/RESULTS.md``.

Run:  python examples/evaluation_matrix.py
"""

from repro.evaluation import MatrixRunner, get_defense


def main():
    runner = MatrixRunner(
        attacks=("cf-cache", "loop-secret", "controlled-channel"),
        # trimmed port-contention knobs keep the full demo under a
        # minute; defaults reproduce docs/RESULTS.md exactly
        overrides={},
        label="example-matrix",
    )
    matrix = runner.run()

    print("attack x defense matrix "
          f"(master seed {matrix.master_seed}):\n")
    print(matrix.summary_markdown())
    print()

    print("cell details:\n")
    print(matrix.detail_markdown())
    print()

    cell = matrix.cell("loop-secret", "dejavu")
    dejavu = get_defense("dejavu")
    print("one cell, unpacked -- loop-secret under Deja Vu:")
    print(f"  accuracy       : {cell.metrics.accuracy:.2f} "
          f"(chance {cell.metrics.chance:.2f})")
    print(f"  replay windows : {cell.metrics.replays} "
          f"(masking budget {dejavu.replay_budget} per handle)")
    print(f"  detected       : {cell.metrics.detected}")
    print(f"  classification : {cell.classification}")
    print(f"  seed           : {cell.seed}  (rerun any cell "
          f"bit-identically from this)")


if __name__ == "__main__":
    main()
