#!/usr/bin/env python3
"""The AES attack of §4.4/§6.2, end to end — plus key recovery.

1. A victim decrypts one block with OpenSSL-style table AES inside an
   enclave; the tables and round keys live on separate pages.
2. MicroScope single-steps the decryption with the rk/Td0 pivot
   ping-pong, probing all 64 Td cache lines at every fault (Fig. 11).
3. The extracted round-1 line observations give the high nibble of
   every byte of the first decryption round key (= the last
   encryption round key) — 64 bits of key material from line
   granularity alone.
4. At entry granularity (MicroScope denoising a sub-line channel like
   MemJam), the same observations yield the full round key, and the
   AES-128 key schedule inverts to the master key.

Run:  python examples/aes_single_run_extraction.py
"""

import repro
from repro.core.analysis import (
    IndexObservation,
    assemble_round_key,
    recover_round_key,
)
from repro.crypto.aes import (
    encrypt_block,
    expand_decrypt_key,
    first_round_accesses,
)
from repro.crypto.keyschedule import invert_aes128_schedule

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def figure11_demo(ciphertext):
    print("=== Figure 11: one iteration, three replays ===")
    attack = repro.AESCacheAttack(KEY, ciphertext)
    fig11 = attack.run_figure11()
    print("Td1 line :", "  ".join(f"{i:>4}" for i in range(16)))
    for replay, latencies in enumerate(fig11.replay_latencies):
        print(f"replay {replay} :",
              "  ".join(f"{lat:>4}" for lat in latencies))
    print(f"lines accessed in the window (truth)    : "
          f"{fig11.truth_lines}")
    print(f"lines extracted from primed replays     : "
          f"{fig11.extracted_lines}")
    print(f"noise-free: {fig11.noise_free}\n")


def full_extraction_demo(ciphertext):
    print("=== Single-run extraction of the whole decryption ===")
    attack = repro.AESCacheAttack(KEY, ciphertext)
    result = attack.run_full_extraction()
    for table in range(4):
        print(f"Td{table}: extracted {sorted(result.extracted_lines[table])}")
    print(f"recall {result.union_recall():.3f}  "
          f"precision {result.union_precision():.3f}  "
          f"victim still decrypted correctly: {result.plaintext_ok}\n")


def key_recovery_demo():
    print("=== Key recovery, driven by the attack's own probes ===")
    plaintexts = [b"sixteen byte msg", b"another message!",
                  b"third ciphertext"]
    ciphertexts = [encrypt_block(KEY, p) for p in plaintexts]

    # Stage 1: run the full stepper per block; attribute each round-1
    # statement's table line from the fault-window probe logs alone —
    # declared as one facade experiment over the block list.
    result = repro.Experiment(
        attack=repro.AESKeyRecoveryAttack(KEY),
        victim={"ciphertexts": ciphertexts},
        label="aes-key-recovery-example",
    ).run().result
    for block, attribution in enumerate(result.attributions):
        print(f"  block {block}: attribution accuracy "
              f"{attribution.accuracy_against(KEY):.2f}")
    rk = expand_decrypt_key(KEY)
    true_round_key = b"".join(w.to_bytes(4, "big") for w in rk[0:4])
    recovered_nibbles = "".join(
        f"{result.recovered[i]:x}" if i in result.recovered else "?"
        for i in range(16))
    true_nibbles = "".join(f"{b >> 4:x}" for b in true_round_key)
    print(f"line granularity (64B): {result.bits_recovered} key bits "
          f"from {len(ciphertexts)} blocks")
    print(f"  recovered high nibbles: {recovered_nibbles}")
    print(f"  truth                 : {true_nibbles}")
    print(f"  all correct: {result.all_correct}")

    # Stage 2: with a sub-line channel (MemJam-style, which MicroScope
    # denoises the same way) the observations carry full indices; the
    # same pipeline then completes the master key.
    index_obs = []
    for ciphertext in ciphertexts:
        for access in first_round_accesses(KEY, ciphertext):
            index_obs.append(IndexObservation(
                ciphertext, access.statement, access.table,
                access.index))
    key_bytes = recover_round_key(index_obs)
    round_key = assemble_round_key(key_bytes)
    master = invert_aes128_schedule(round_key)
    print(f"entry granularity (4B): full round key -> schedule "
          f"inversion")
    print(f"  recovered master key: {master.hex()}")
    print(f"  true master key     : {KEY.hex()}")
    print(f"  match: {master == KEY}")


def main():
    ciphertext = encrypt_block(KEY, b"attack at dawn!!")
    figure11_demo(ciphertext)
    full_extraction_demo(ciphertext)
    key_recovery_demo()


if __name__ == "__main__":
    main()
