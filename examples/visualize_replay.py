#!/usr/bin/env python3
"""Watch a replay attack happen, instruction by instruction.

Attaches the pipeline tracer to the core, runs a 3-replay MicroScope
attack on a tiny victim, and renders:

1. the pipeline diagram — the victim's post-handle instructions fetch,
   execute, and die with an ``X`` (squashed) three times before finally
   retiring with an ``R``;
2. the replay trail of the transmit instruction — every dynamic
   instance with its fate;
3. the machine statistics report, where the attack shows up as a
   squash storm and a rock-bottom victim IPC.

Run:  python examples/visualize_replay.py
"""

from repro.core.recipes import replay_n_times
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.trace import PipelineTracer, render_pipeline
from repro.isa.program import ProgramBuilder
from repro.reporting import machine_report


def main():
    rep = Replayer(AttackEnvironment.build())
    tracer = PipelineTracer()
    rep.machine.core.tracer = tracer

    process = rep.create_victim_process(enclave=False)
    data = process.alloc(4096, "handle-page")
    secret = process.alloc(4096, "secret-page")
    process.write(secret, 42)
    program = (ProgramBuilder("tiny-victim")
               .li("r1", data)
               .li("r2", secret)
               .load("r3", "r1", 0, comment="replay-handle")
               .load("r4", "r2", 0)
               .fli("f0", 9.0)
               .fli("f1", 3.0)
               .fdiv("f2", "f0", "f1", comment="transmit")
               .halt().build())

    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(3))
    rep.launch_victim(process, program)
    rep.arm(recipe)
    rep.run_until_victim_done()

    print("=== pipeline view (victim context) ===")
    print(render_pipeline(tracer.for_context(0), max_width=90))

    print("\n=== replay trail of the transmit divide (instruction 6) ===")
    for instance in tracer.replays_of(index=6):
        fate = (f"retired @ {instance.retire_cycle}"
                if instance.retire_cycle is not None else
                f"squashed @ {instance.squash_cycle} "
                f"({instance.squash_reason})")
        issued = ("executed" if instance.issue_cycle is not None
                  else "never issued")
        print(f"  fetched @ {instance.fetch_cycle:>6}: {issued}, {fate}")

    print("\n=== machine report ===")
    print(machine_report(rep.machine, kernel=rep.kernel,
                         module=rep.module).render())


if __name__ == "__main__":
    main()
