#!/usr/bin/env python3
"""Figure 10, interactively: the port-contention attack of §4.3/§6.1.

Reproduces both panels of the paper's Figure 10 and draws them as
ASCII scatter plots: monitor latency per measurement, with the
threshold line.  The div-side victim produces a clear band of
above-threshold samples; the mul-side victim produces (almost) none.

Run:  python examples/port_contention_attack.py [--samples N]
"""

import argparse

import repro


def ascii_scatter(samples, threshold, height=12, width=72):
    """Down-sampled ASCII rendering of a latency trace."""
    lo = min(samples)
    hi = max(max(samples), threshold + 10)
    rows = [[" "] * width for _ in range(height)]
    step = max(1, len(samples) // width)
    for column, start in enumerate(range(0, len(samples), step)):
        if column >= width:
            break
        chunk = samples[start:start + step]
        for value in (min(chunk), max(chunk)):
            frac = (value - lo) / max(hi - lo, 1)
            row = height - 1 - int(frac * (height - 1))
            rows[row][column] = "*"
    threshold_row = height - 1 - int(
        (threshold - lo) / max(hi - lo, 1) * (height - 1))
    lines = []
    for i, row in enumerate(rows):
        label = f"{int(hi - (hi - lo) * i / (height - 1)):>5} |"
        body = "".join(row)
        if i == max(0, min(height - 1, threshold_row)):
            body = "".join(ch if ch == "*" else "-" for ch in body)
            label = f"{int(threshold):>5} +"
        lines.append(label + body)
    lines.append("      +" + "-" * width)
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=3000,
                        help="monitor measurements (paper: 10000)")
    args = parser.parse_args()

    attack = repro.PortContentionAttack(measurements=args.samples)
    print("Calibrating threshold from a quiet monitor run...")
    threshold = attack.calibrate()
    print(f"threshold = {threshold:.0f} cycles\n")

    report = repro.Experiment(
        attack=attack,
        victim={"threshold": threshold},
        sweep=[{"secret": 0}, {"secret": 1}],
        label="fig10-example",
    ).run()

    results = dict(zip((0, 1), report.results))
    for secret, figure in ((0, "Figure 10a (victim: 2x mul)"),
                           (1, "Figure 10b (victim: 2x div)")):
        result = results[secret]
        print(figure)
        print(ascii_scatter(result.samples, threshold))
        print(f"  above threshold: {result.above_threshold} / "
              f"{len(result.samples)}   replays: {result.replays}   "
              f"verdict: {'div' if result.verdict else 'mul'} "
              f"({'correct' if result.correct else 'WRONG'})\n")

    mul, div = results[0], results[1]
    ratio = div.above_threshold / max(mul.above_threshold, 1)
    print(f"div/mul above-threshold ratio: {ratio:.0f}x "
          f"(paper: ~16x at 10,000 samples)")


if __name__ == "__main__":
    main()
